//! Collection synchronization — the paper's target workload.
//!
//! "We study the problem of maintaining large replicated collections of
//! files" (§1): a client mirrors thousands of files (web pages, a source
//! tree) and periodically updates them all. Per file the cost is the
//! session cost of [`crate::session::sync_file`]; at the collection
//! level:
//!
//! * unchanged files are skipped after the strong-fingerprint exchange
//!   (handled inside each session),
//! * file names are exchanged once so both sides agree which files are
//!   new, deleted, or shared,
//! * protocol rounds are batched across files, so the *roundtrip* count
//!   is the maximum any single file needs, not the sum — the paper's
//!   "the roundtrip latencies are not incurred for each file since many
//!   files can be processed simultaneously".

use crate::config::ProtocolConfig;
use crate::session::{sync_file, sync_file_with, SyncError, SyncOptions};
use crate::stats::SyncStats;
use msync_protocol::{frame_wire_size, Direction, Phase, TrafficStats};
use msync_trace::{DirTag, EventKind, PhaseTag, Recorder};

/// A named file in a collection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// Collection-relative path.
    pub name: String,
    /// File contents.
    pub data: Vec<u8>,
}

impl FileEntry {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, data: impl Into<Vec<u8>>) -> Self {
        Self { name: name.into(), data: data.into() }
    }
}

/// Result of synchronizing a collection.
#[derive(Debug, Clone)]
pub struct CollectionOutcome {
    /// The client's updated collection (exactly the server's).
    pub files: Vec<FileEntry>,
    /// Merged traffic over all files plus the name exchange;
    /// `roundtrips` is the batched (maximum per-file) count.
    pub traffic: TrafficStats,
    /// Per-file session statistics for files that ran the protocol.
    pub per_file: Vec<(String, SyncStats)>,
    /// Files skipped because their fingerprints matched.
    pub unchanged: usize,
    /// Files that existed only on the server (transferred whole).
    pub created: usize,
    /// Created files served from a renamed old file (same content under
    /// a different name, detected by fingerprint — they cost a name
    /// reference instead of a transfer).
    pub renamed: usize,
    /// Files that existed only on the client (deleted).
    pub deleted: usize,
    /// Files whose session fell back to a full transfer.
    pub fell_back: usize,
    /// Files confirmed complete by a resume offer (checkpoint or
    /// metadata cache) — they skipped their sessions entirely.
    pub resumed: usize,
}

/// Synchronize the client's `old` collection to the server's `new` one.
///
/// The name listings are exchanged in sorted order and the outcome's
/// `files`/`per_file` follow that sorted order, so the result is a pure
/// function of the two collections' *contents* — callers may present
/// their entries in any order (directory walks differ across
/// filesystems) and still get byte-identical outcomes.
pub fn sync_collection(
    old: &[FileEntry],
    new: &[FileEntry],
    cfg: &ProtocolConfig,
) -> Result<CollectionOutcome, SyncError> {
    sync_collection_traced(old, new, cfg, &Recorder::off())
}

/// [`sync_collection`] with a trace [`Recorder`] attached.
///
/// Every byte charged to the outcome's `traffic` is mirrored by exactly
/// one `frame_send`/`frame_recv` trace event (the collection-level name
/// listings here, the per-session charges inside each file's driver), so
/// a journal's per-direction/per-phase byte sums reproduce the returned
/// [`TrafficStats`] exactly. File ids in events are indices into the
/// sorted-name order, matching the outcome's `files`/`per_file` order.
pub fn sync_collection_traced(
    old: &[FileEntry],
    new: &[FileEntry],
    cfg: &ProtocolConfig,
    recorder: &Recorder,
) -> Result<CollectionOutcome, SyncError> {
    let mut new_sorted: Vec<&FileEntry> = new.iter().collect();
    new_sorted.sort_by(|a, b| a.name.cmp(&b.name));
    let mut traffic = TrafficStats::new();

    // Name exchange: client lists its file names; server answers with
    // the set of names to create/delete. Fingerprints travel inside each
    // per-file session, so only the name bytes are charged here.
    let c2s_listing: u64 = old.iter().map(|f| frame_wire_size(f.name.len())).sum::<u64>().max(1);
    traffic.record(Direction::ClientToServer, Phase::Setup, c2s_listing);
    recorder.record(EventKind::FrameSend {
        dir: DirTag::C2s,
        phase: PhaseTag::Setup,
        bytes: c2s_listing,
    });
    let old_names: std::collections::HashSet<&str> = old.iter().map(|f| f.name.as_str()).collect();
    let new_names: std::collections::HashSet<&str> = new.iter().map(|f| f.name.as_str()).collect();
    let s2c_listing: u64 = new
        .iter()
        .filter(|f| !old_names.contains(f.name.as_str()))
        .map(|f| frame_wire_size(f.name.len()))
        .sum::<u64>()
        + old.iter().filter(|f| !new_names.contains(f.name.as_str())).count() as u64
        + 1;
    traffic.record(Direction::ServerToClient, Phase::Setup, s2c_listing);
    recorder.record(EventKind::FrameRecv {
        dir: DirTag::S2c,
        phase: PhaseTag::Setup,
        bytes: s2c_listing,
    });

    let deleted = old.iter().filter(|f| !new_names.contains(f.name.as_str())).count();

    let mut files = Vec::with_capacity(new.len());
    let mut per_file = Vec::new();
    let mut unchanged = 0usize;
    let mut created = 0usize;
    let mut renamed = 0usize;
    let mut fell_back = 0usize;
    let mut max_roundtrips = 1u32;

    let empty: Vec<u8> = Vec::new();
    let old_by_name: std::collections::HashMap<&str, &FileEntry> =
        old.iter().map(|f| (f.name.as_str(), f)).collect();
    // Rename detection: the client's name listing already travels with
    // per-file fingerprints inside the sessions, so the server can spot
    // a "new" file whose content equals an old file under another name
    // and answer with a base-file reference instead of a transfer. When
    // several old files share a fingerprint, the smallest name is the
    // base so the choice never depends on input order.
    let mut old_by_fp: std::collections::HashMap<msync_hash::Fingerprint, &FileEntry> =
        std::collections::HashMap::with_capacity(old.len());
    for f in old {
        let fp = msync_hash::file_fingerprint(&f.data);
        let slot = old_by_fp.entry(fp).or_insert(f);
        if f.name < slot.name {
            *slot = f;
        }
    }
    for (file_id, nf) in new_sorted.into_iter().enumerate() {
        let mut old_data = old_by_name.get(nf.name.as_str()).map(|f| f.data.as_slice());
        let mut was_rename = false;
        if old_data.is_none() {
            created += 1;
            if let Some(base) = old_by_fp.get(&msync_hash::file_fingerprint(&nf.data)) {
                // Rename: sync against the identical old file; the
                // session's fingerprint exchange reduces it to ~20 B.
                // Charge the base-name reference the server sends.
                renamed += 1;
                was_rename = true;
                let base_ref = frame_wire_size(base.name.len());
                traffic.record(Direction::ServerToClient, Phase::Setup, base_ref);
                recorder.record(EventKind::FrameRecv {
                    dir: DirTag::S2c,
                    phase: PhaseTag::Setup,
                    bytes: base_ref,
                });
                old_data = Some(base.data.as_slice());
            }
        }
        let old_bytes = old_data.unwrap_or(&empty);
        let opts =
            SyncOptions { recorder: recorder.clone(), file_id: file_id as u64, channel: None };
        let outcome = sync_file_with(old_bytes, &nf.data, cfg, &opts)?;
        debug_assert_eq!(outcome.reconstructed, nf.data);
        // Renames are categorized as `created` (+`renamed`), not
        // `unchanged` — the categories must partition the files.
        if !was_rename
            && outcome.stats.levels.is_empty()
            && outcome.reconstructed == *old_bytes
            && old_data.is_some()
        {
            unchanged += 1;
        }
        if outcome.fell_back {
            fell_back += 1;
        }
        max_roundtrips = max_roundtrips.max(outcome.stats.traffic.roundtrips);
        traffic.merge(&outcome.stats.traffic);
        files.push(FileEntry { name: nf.name.clone(), data: outcome.reconstructed });
        per_file.push((nf.name.clone(), outcome.stats));
    }
    traffic.roundtrips = max_roundtrips + 1; // +1 for the name exchange

    Ok(CollectionOutcome {
        files,
        traffic,
        per_file,
        unchanged,
        created,
        renamed,
        deleted,
        fell_back,
        resumed: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(n: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 56) as u8
            })
            .collect()
    }

    fn small_cfg() -> ProtocolConfig {
        ProtocolConfig {
            start_block: 1 << 12,
            min_block_global: 64,
            min_block_cont: 16,
            ..Default::default()
        }
    }

    #[test]
    fn mixed_collection_sync() {
        let shared_a = blob(5_000, 7);
        let mut shared_a_new = shared_a.clone();
        shared_a_new.splice(1_000..1_000, b"inserted".iter().copied());
        let untouched = blob(8_000, 9);
        let old = vec![
            FileEntry::new("a.txt", shared_a.clone()),
            FileEntry::new("same.txt", untouched.clone()),
            FileEntry::new("gone.txt", blob(2_000, 11)),
        ];
        let new = vec![
            FileEntry::new("a.txt", shared_a_new.clone()),
            FileEntry::new("same.txt", untouched.clone()),
            FileEntry::new("fresh.txt", blob(3_000, 13)),
        ];
        let out = sync_collection(&old, &new, &small_cfg()).unwrap();
        assert_eq!(out.files.len(), 3);
        // Output follows sorted-name order regardless of input order.
        let mut want: Vec<&FileEntry> = new.iter().collect();
        want.sort_by(|a, b| a.name.cmp(&b.name));
        for (got, want) in out.files.iter().zip(want) {
            assert_eq!(got, want);
        }
        assert_eq!(out.unchanged, 1);
        assert_eq!(out.created, 1);
        assert_eq!(out.deleted, 1);
        // The changed file's cost must be far below retransmission.
        assert!(out.traffic.total_bytes() < 8_000 + shared_a_new.len() as u64);
    }

    #[test]
    fn outcome_is_independent_of_input_order() {
        let mk = |i: u64| FileEntry::new(format!("f{i}.txt"), blob(2_000 + i as usize * 37, i));
        let old: Vec<FileEntry> = (0..8).map(mk).collect();
        let mut new: Vec<FileEntry> = (2..10)
            .map(|i| {
                let mut f = mk(i);
                f.data.rotate_left(i as usize);
                f
            })
            .collect();
        let mut old_rev = old.clone();
        old_rev.reverse();
        let forward = sync_collection(&old, &new, &small_cfg()).unwrap();
        new.reverse();
        let backward = sync_collection(&old_rev, &new, &small_cfg()).unwrap();
        assert_eq!(forward.files, backward.files);
        assert_eq!(forward.traffic.total_bytes(), backward.traffic.total_bytes());
        assert_eq!(
            forward.per_file.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            backward.per_file.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn disjoint_name_sets_create_and_delete_everything() {
        let old = vec![
            FileEntry::new("only/mine-1", blob(1_500, 3)),
            FileEntry::new("only/mine-2", blob(1_500, 5)),
        ];
        let new = vec![
            FileEntry::new("theirs/b", blob(1_200, 17)),
            FileEntry::new("theirs/a", blob(1_200, 19)),
        ];
        let out = sync_collection(&old, &new, &small_cfg()).unwrap();
        assert_eq!(out.created, 2);
        assert_eq!(out.deleted, 2);
        assert_eq!(out.unchanged, 0);
        assert_eq!(out.renamed, 0);
        let names: Vec<&str> = out.files.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["theirs/a", "theirs/b"]);
        assert_eq!(out.files[0].data, new[1].data);
        assert_eq!(out.files[1].data, new[0].data);
    }

    #[test]
    fn rename_mixed_with_creates_and_deletes() {
        let kept = blob(6_000, 29);
        let moved = blob(9_000, 31);
        let old = vec![
            FileEntry::new("keep.txt", kept.clone()),
            FileEntry::new("before-rename.bin", moved.clone()),
            FileEntry::new("victim.txt", blob(500, 37)),
        ];
        let new = vec![
            FileEntry::new("after-rename.bin", moved.clone()),
            FileEntry::new("keep.txt", kept.clone()),
            FileEntry::new("extra.txt", blob(700, 43)),
        ];
        let out = sync_collection(&old, &new, &small_cfg()).unwrap();
        assert_eq!(out.renamed, 1);
        assert_eq!(out.created, 2); // rename counts as created + renamed
        assert_eq!(out.deleted, 2); // both vanished names, incl. the rename source
        assert_eq!(out.unchanged, 1);
        let by_name: std::collections::HashMap<&str, &[u8]> =
            out.files.iter().map(|f| (f.name.as_str(), f.data.as_slice())).collect();
        assert_eq!(by_name["after-rename.bin"], moved.as_slice());
        assert_eq!(by_name["keep.txt"], kept.as_slice());
    }

    #[test]
    fn rename_detected_by_fingerprint() {
        let content = blob(20_000, 41);
        let old = vec![FileEntry::new("old-name.bin", content.clone())];
        let new = vec![FileEntry::new("new-name.bin", content.clone())];
        let out = sync_collection(&old, &new, &small_cfg()).unwrap();
        assert_eq!(out.files[0].data, content);
        assert_eq!(out.renamed, 1);
        assert_eq!(out.created, 1);
        // A rename costs names + fingerprints, never a transfer.
        assert!(out.traffic.total_bytes() < 128, "rename cost {} bytes", out.traffic.total_bytes());
    }

    #[test]
    fn empty_collections() {
        let out = sync_collection(&[], &[], &small_cfg()).unwrap();
        assert!(out.files.is_empty());
        assert_eq!(out.unchanged + out.created + out.deleted, 0);
    }

    #[test]
    fn roundtrips_batched_not_summed() {
        let mk = |seed| {
            let base = blob(4_000, seed);
            let mut updated = base.clone();
            updated[2_000] ^= 0xFF;
            (base, updated)
        };
        let (a_old, a_new) = mk(21);
        let (b_old, b_new) = mk(23);
        let old = vec![FileEntry::new("a", a_old), FileEntry::new("b", b_old)];
        let new = vec![FileEntry::new("a", a_new), FileEntry::new("b", b_new)];
        let out = sync_collection(&old, &new, &small_cfg()).unwrap();
        let per_file_max = out.per_file.iter().map(|(_, s)| s.traffic.roundtrips).max().unwrap();
        assert_eq!(out.traffic.roundtrips, per_file_max + 1);
    }
}

/// How the two sides identify changed files before any per-file session
/// runs (paper §4's related-work problem; see `msync-recon`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconStrategy {
    /// Ship every (name, fingerprint) pair — the paper's choice,
    /// "efficient enough for our data sets". Linear in collection size.
    Flat,
    /// Merkle-difference walk: `O(d·log(n/d))` hashes for `d` changes.
    Merkle,
    /// Madej-style adaptive group testing over fingerprint groups.
    GroupTesting,
}

/// Collection sync with an explicit change-identification phase: the
/// reconciliation runs first (its bytes charged to setup), and only the
/// differing files run per-file sessions. With few changes in a large
/// collection, [`ReconStrategy::Merkle`] or
/// [`ReconStrategy::GroupTesting`] cut the setup cost from `O(n)` to
/// `O(d·log n)`.
///
/// Differences from [`sync_collection`] (which keeps its own per-file
/// loop because its costs are accounted inside each session): renamed
/// files are **not** detected here — a file appearing under a new name
/// reconciles as created and transfers as a delta against empty — and
/// unchanged files cost zero instead of a fingerprint pair. Prefer this
/// variant for large mostly-unchanged collections, the plain one when
/// renames are common.
pub fn sync_collection_with(
    old: &[FileEntry],
    new: &[FileEntry],
    cfg: &ProtocolConfig,
    strategy: ReconStrategy,
) -> Result<CollectionOutcome, SyncError> {
    use msync_recon as recon;

    let items = |files: &[FileEntry]| -> Vec<recon::Item> {
        let mut v: Vec<recon::Item> = files
            .iter()
            .map(|f| recon::Item {
                name: f.name.clone(),
                fp: msync_hash::file_fingerprint(&f.data),
            })
            .collect();
        recon::canonicalize(&mut v);
        v
    };
    let client_items = items(old);
    let server_items = items(new);
    let rec = match strategy {
        ReconStrategy::Flat => recon::flat_exchange(&client_items, &server_items),
        ReconStrategy::Merkle => recon::merkle::reconcile(&client_items, &server_items),
        ReconStrategy::GroupTesting => {
            recon::group_testing::reconcile(&client_items, &server_items)
        }
    };
    let differing: std::collections::HashSet<&str> =
        rec.differing.iter().map(String::as_str).collect();

    let mut traffic = TrafficStats::new();
    traffic.record(Direction::ClientToServer, Phase::Setup, rec.c2s);
    traffic.record(Direction::ServerToClient, Phase::Setup, rec.s2c);

    let old_by_name: std::collections::HashMap<&str, &FileEntry> =
        old.iter().map(|f| (f.name.as_str(), f)).collect();
    let new_names: std::collections::HashSet<&str> = new.iter().map(|f| f.name.as_str()).collect();
    let deleted = old.iter().filter(|f| !new_names.contains(f.name.as_str())).count();

    let mut files = Vec::with_capacity(new.len());
    let mut per_file = Vec::new();
    let mut unchanged = 0usize;
    let mut created = 0usize;
    let mut fell_back = 0usize;
    let mut max_roundtrips = rec.roundtrips;
    let empty: Vec<u8> = Vec::new();
    for nf in new {
        if !differing.contains(nf.name.as_str()) {
            // Reconciliation proved it unchanged: zero marginal cost.
            unchanged += 1;
            files.push(nf.clone());
            continue;
        }
        let old_data = old_by_name.get(nf.name.as_str()).map(|f| f.data.as_slice());
        if old_data.is_none() {
            created += 1;
        }
        let outcome = sync_file(old_data.unwrap_or(&empty), &nf.data, cfg)?;
        debug_assert_eq!(outcome.reconstructed, nf.data);
        if outcome.fell_back {
            fell_back += 1;
        }
        max_roundtrips = max_roundtrips.max(rec.roundtrips + outcome.stats.traffic.roundtrips);
        traffic.merge(&outcome.stats.traffic);
        files.push(FileEntry { name: nf.name.clone(), data: outcome.reconstructed });
        per_file.push((nf.name.clone(), outcome.stats));
    }
    traffic.roundtrips = max_roundtrips;
    Ok(CollectionOutcome {
        files,
        traffic,
        per_file,
        unchanged,
        created,
        renamed: 0,
        deleted,
        fell_back,
        resumed: 0,
    })
}

#[cfg(test)]
mod recon_tests {
    use super::*;

    fn blob(n: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(2).wrapping_add(1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 56) as u8
            })
            .collect()
    }

    fn make(n: usize, changed: &[usize]) -> (Vec<FileEntry>, Vec<FileEntry>) {
        let mut old = Vec::new();
        let mut new = Vec::new();
        for i in 0..n {
            let base = blob(3_000, 900 + i as u64);
            old.push(FileEntry::new(format!("f{i:04}"), base.clone()));
            let data = if changed.contains(&i) {
                let mut d = base;
                d[1_500] ^= 0xFF;
                d
            } else {
                base
            };
            new.push(FileEntry::new(format!("f{i:04}"), data));
        }
        (old, new)
    }

    #[test]
    fn all_strategies_reconstruct_identically() {
        let (old, new) = make(40, &[3, 17, 31]);
        let cfg = ProtocolConfig { start_block: 1 << 11, ..Default::default() };
        for strategy in [ReconStrategy::Flat, ReconStrategy::Merkle, ReconStrategy::GroupTesting] {
            let out = sync_collection_with(&old, &new, &cfg, strategy).unwrap();
            assert_eq!(out.files.len(), 40);
            for (got, want) in out.files.iter().zip(&new) {
                assert_eq!(got.data, want.data, "{strategy:?}: {}", want.name);
            }
            assert_eq!(out.unchanged, 37, "{strategy:?}");
        }
    }

    #[test]
    fn merkle_setup_beats_flat_on_sparse_changes() {
        let (old, new) = make(300, &[123]);
        let cfg = ProtocolConfig { start_block: 1 << 11, ..Default::default() };
        let flat = sync_collection_with(&old, &new, &cfg, ReconStrategy::Flat).unwrap();
        let merkle = sync_collection_with(&old, &new, &cfg, ReconStrategy::Merkle).unwrap();
        let setup =
            |o: &CollectionOutcome| o.traffic.c2s(Phase::Setup) + o.traffic.s2c(Phase::Setup);
        assert!(
            setup(&merkle) * 3 < setup(&flat),
            "merkle setup {} vs flat {}",
            setup(&merkle),
            setup(&flat)
        );
        assert!(merkle.traffic.total_bytes() < flat.traffic.total_bytes());
    }
}
