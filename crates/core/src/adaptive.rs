//! Adaptive parameter selection (paper §7: "ideally, such a tool would
//! be adaptive and thus choose the best set of parameters and number of
//! roundtrips based on the characteristics of the data set and
//! communication link").
//!
//! Strategy, in the spirit the paper sketches:
//!
//! 1. **Static sizing** — the starting block size is fitted to the file
//!    (a power of two around an eighth of its size, capped at 2¹⁵), so
//!    small files skip the rounds whose single block can never match a
//!    changed file, and the recursion depth is tuned to file size.
//! 2. **Probe-and-commit per collection** — the first few *changed*
//!    files of a collection are synchronized under each candidate
//!    configuration; the cheapest wins and is used for the rest. The
//!    candidates span the trade-off the evaluation mapped out: deep
//!    recursion + continuation (similar files), the balanced default,
//!    and a shallow cheap-map variant (heavily-changed files).

use crate::collection::{sync_collection, CollectionOutcome, FileEntry};
use crate::config::{ProtocolConfig, VerifyStrategy};
use crate::session::{sync_file, SyncError, SyncOutcome};

/// Fit the starting block size (and with it the recursion depth) to a
/// file of `len` bytes.
pub fn fitted_start_block(len: usize) -> usize {
    // Aim for ~8 top-level blocks, clamped to sane protocol bounds.
    let target = (len / 8).max(512);
    let fitted = target.next_power_of_two();
    fitted.clamp(512, 1 << 15)
}

/// A configuration with its start block fitted to the given file size.
pub fn fitted_config(base: &ProtocolConfig, file_len: usize) -> ProtocolConfig {
    let start_block = fitted_start_block(file_len);
    ProtocolConfig {
        start_block,
        min_block_global: base.min_block_global.min(start_block),
        min_block_cont: base.min_block_cont.min(start_block),
        ..base.clone()
    }
}

/// Synchronize one file with the start block fitted to its size.
pub fn sync_file_adaptive(
    old: &[u8],
    new: &[u8],
    base: &ProtocolConfig,
) -> Result<SyncOutcome, SyncError> {
    let cfg = fitted_config(base, old.len().max(new.len()));
    sync_file(old, new, &cfg)
}

/// The candidate set the collection-level probe chooses from.
pub fn candidate_configs() -> Vec<(&'static str, ProtocolConfig)> {
    let deep = ProtocolConfig {
        min_block_global: 64,
        min_block_cont: 8,
        cont_bits: 3,
        ..ProtocolConfig::default()
    };
    let shallow = ProtocolConfig {
        min_block_global: 512,
        min_block_cont: 64,
        verify: VerifyStrategy::PerCandidate { bits: 20 },
        ..ProtocolConfig::default()
    };
    vec![("deep", deep), ("balanced", ProtocolConfig::default()), ("shallow", shallow)]
}

/// Outcome of an adaptive collection sync.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// The underlying collection outcome (with the winning config).
    pub outcome: CollectionOutcome,
    /// Name of the configuration the probe chose.
    pub chosen: &'static str,
    /// Bytes spent probing (already included in `outcome.traffic`? No —
    /// probing happens on real files, so the probe bytes are the real
    /// sync cost of those files; this counts the *extra* bytes spent on
    /// the configurations that lost).
    pub probe_overhead: u64,
}

/// Synchronize a collection, choosing the configuration by probing the
/// first `probe_files` changed files with every candidate.
///
/// The probe files are genuinely synchronized once per candidate; the
/// losing candidates' traffic is accounted as `probe_overhead` (a real
/// deployment would interleave candidates across different files
/// instead — we keep the accounting honest and pessimistic).
pub fn sync_collection_adaptive(
    old: &[FileEntry],
    new: &[FileEntry],
    probe_files: usize,
) -> Result<AdaptiveOutcome, SyncError> {
    let old_by_name: std::collections::HashMap<&str, &FileEntry> =
        old.iter().map(|f| (f.name.as_str(), f)).collect();
    let probes: Vec<(&[u8], &[u8])> = new
        .iter()
        .filter_map(|nf| {
            let of = old_by_name.get(nf.name.as_str())?;
            (of.data != nf.data).then_some((of.data.as_slice(), nf.data.as_slice()))
        })
        .take(probe_files)
        .collect();

    let candidates = candidate_configs();
    let (chosen, probe_overhead) = if probes.is_empty() {
        ("balanced", 0)
    } else {
        let mut best: (&'static str, u64) = ("balanced", u64::MAX);
        let mut total_probe = 0u64;
        for (name, cfg) in &candidates {
            let mut bytes = 0u64;
            for (o, n) in &probes {
                let out = sync_file_adaptive(o, n, cfg)?;
                debug_assert_eq!(out.reconstructed, *n);
                bytes += out.stats.total_bytes();
            }
            total_probe += bytes;
            if bytes < best.1 {
                best = (name, bytes);
            }
        }
        // The winner's probe bytes are real sync work it would have done
        // anyway; only the losers' bytes are overhead.
        (best.0, total_probe.saturating_sub(best.1))
    };

    let cfg = candidates
        .iter()
        .find(|(n, _)| *n == chosen)
        .map_or_else(ProtocolConfig::default, |(_, c)| c.clone());
    let outcome = sync_collection_fitted(old, new, &cfg)?;
    Ok(AdaptiveOutcome { outcome, chosen, probe_overhead })
}

/// Collection sync with per-file start-block fitting.
fn sync_collection_fitted(
    old: &[FileEntry],
    new: &[FileEntry],
    base: &ProtocolConfig,
) -> Result<CollectionOutcome, SyncError> {
    // Group files by fitted start block and sync each group with its
    // fitted configuration, merging the outcomes.
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<usize, (Vec<FileEntry>, Vec<FileEntry>)> = BTreeMap::new();
    let old_by_name: std::collections::HashMap<&str, &FileEntry> =
        old.iter().map(|f| (f.name.as_str(), f)).collect();
    for nf in new {
        let of = old_by_name.get(nf.name.as_str());
        let len = nf.data.len().max(of.map_or(0, |f| f.data.len()));
        let bucket = groups.entry(fitted_start_block(len)).or_default();
        if let Some(of) = of {
            bucket.0.push((*of).clone());
        }
        bucket.1.push(nf.clone());
    }
    // Deleted files join the first group so the name exchange sees them.
    let new_names: std::collections::HashSet<&str> = new.iter().map(|f| f.name.as_str()).collect();
    let deleted: Vec<FileEntry> =
        old.iter().filter(|f| !new_names.contains(f.name.as_str())).cloned().collect();

    let mut merged: Option<CollectionOutcome> = None;
    let mut first = true;
    for (start_block, (mut g_old, g_new)) in groups {
        if first {
            g_old.extend(deleted.iter().cloned());
            first = false;
        }
        let cfg = ProtocolConfig {
            start_block,
            min_block_global: base.min_block_global.min(start_block),
            min_block_cont: base.min_block_cont.min(start_block),
            ..base.clone()
        };
        let out = sync_collection(&g_old, &g_new, &cfg)?;
        merged = Some(match merged {
            None => out,
            Some(mut acc) => {
                acc.files.extend(out.files);
                acc.traffic.merge(&out.traffic);
                acc.per_file.extend(out.per_file);
                acc.unchanged += out.unchanged;
                acc.created += out.created;
                acc.renamed += out.renamed;
                acc.deleted += out.deleted;
                acc.fell_back += out.fell_back;
                acc.resumed += out.resumed;
                acc
            }
        });
    }
    Ok(merged.unwrap_or_else(|| CollectionOutcome {
        files: Vec::new(),
        traffic: msync_protocol::TrafficStats::new(),
        per_file: Vec::new(),
        unchanged: 0,
        created: 0,
        renamed: 0,
        // `new` was empty so no group ran; every old file is a deletion.
        deleted: deleted.len(),
        fell_back: 0,
        resumed: 0,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitted_block_scaling() {
        assert_eq!(fitted_start_block(0), 512);
        assert_eq!(fitted_start_block(4_096), 512);
        assert_eq!(fitted_start_block(15_000), 2_048);
        assert_eq!(fitted_start_block(100_000), 16_384);
        assert_eq!(fitted_start_block(10_000_000), 1 << 15);
    }

    fn blob(n: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(2).wrapping_add(1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn adaptive_file_sync_exact_and_cheaper_on_small_files() {
        let old = blob(6_000, 1);
        let mut new = old.clone();
        new[3_000] ^= 0xFF;
        let base = ProtocolConfig::default();
        let fitted = sync_file_adaptive(&old, &new, &base).unwrap();
        assert_eq!(fitted.reconstructed, new);
        let unfitted = sync_file(&old, &new, &base).unwrap();
        // Fitting the start block cannot be much worse and is usually
        // cheaper (fewer single-block no-op rounds).
        assert!(fitted.stats.total_bytes() <= unfitted.stats.total_bytes() + 16);
        assert!(fitted.stats.traffic.roundtrips <= unfitted.stats.traffic.roundtrips);
    }

    #[test]
    fn adaptive_collection_chooses_and_reconstructs() {
        let mut old_files = Vec::new();
        let mut new_files = Vec::new();
        for i in 0..6u64 {
            let base = blob(8_000, 10 + i);
            let mut updated = base.clone();
            if i % 2 == 0 {
                updated.splice(4_000..4_000, blob(40, 100 + i));
            }
            old_files.push(FileEntry::new(format!("f{i}"), base));
            new_files.push(FileEntry::new(format!("f{i}"), updated));
        }
        let out = sync_collection_adaptive(&old_files, &new_files, 2).unwrap();
        assert_eq!(out.outcome.files.len(), 6);
        let by_name: std::collections::HashMap<_, _> =
            out.outcome.files.iter().map(|f| (f.name.clone(), f.data.clone())).collect();
        for want in &new_files {
            assert_eq!(by_name[&want.name], want.data, "mismatch in {}", want.name);
        }
        assert!(["deep", "balanced", "shallow"].contains(&out.chosen));
        assert!(out.probe_overhead > 0);
    }

    #[test]
    fn adaptive_collection_empty_and_unchanged() {
        let out = sync_collection_adaptive(&[], &[], 3).unwrap();
        assert!(out.outcome.files.is_empty());
        assert_eq!(out.chosen, "balanced");
        assert_eq!(out.probe_overhead, 0);

        let files = vec![FileEntry::new("a", blob(2_000, 42))];
        let out = sync_collection_adaptive(&files, &files, 3).unwrap();
        assert_eq!(out.outcome.files, files);
        assert_eq!(out.probe_overhead, 0); // nothing changed → no probe
    }

    #[test]
    fn all_files_deleted() {
        let old_files = vec![FileEntry::new("gone", blob(2_000, 31))];
        let out = sync_collection_adaptive(&old_files, &[], 2).unwrap();
        assert!(out.outcome.files.is_empty());
        assert_eq!(out.outcome.deleted, 1);
    }

    #[test]
    fn deleted_files_counted_once() {
        let old_files =
            vec![FileEntry::new("keep", blob(3_000, 7)), FileEntry::new("gone", blob(3_000, 8))];
        let new_files = vec![FileEntry::new("keep", blob(3_000, 7))];
        let out = sync_collection_adaptive(&old_files, &new_files, 2).unwrap();
        assert_eq!(out.outcome.deleted, 1);
        assert_eq!(out.outcome.files.len(), 1);
    }
}
