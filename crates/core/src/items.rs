//! Per-round item enumeration — the deterministic heart of the protocol.
//!
//! Each round (one block size), both endpoints must agree exactly on the
//! sequence of *items* the server hashes: continuation probes first, then
//! the active blocks of the recursive partition, with derivable sibling
//! hashes marked suppressed. The sequence is a pure function of state
//! both sides share — the [`Coverage`] of confirmed regions, the set of
//! block hashes already known to the client, the file length, and the
//! configuration — so it is computed independently on each side and
//! never transmitted.

use crate::config::ProtocolConfig;
use crate::coverage::Coverage;
use std::collections::HashSet;

/// Which side of a known interval a continuation probe extends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The probe covers the `D` bytes immediately *before* the interval.
    Left,
    /// The probe covers the `D` bytes immediately *after* the interval.
    Right,
}

/// How a suppressed hash is derived by the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Derivation {
    /// Offset of the (full, size `2D`) parent block whose hash the client
    /// already knows.
    pub parent_off: u64,
    /// Offset of the sibling block whose hash the client can obtain
    /// (transmitted this round, or computed from fully-known bytes).
    pub sibling_off: u64,
    /// True when the suppressed block is the right child.
    pub is_right: bool,
}

/// The kind of hash the server sends (or suppresses) for an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// Continuation probe: compared at one predicted old-file position,
    /// so only `cont_bits` wide. `anchor_edge` is the coverage boundary
    /// it extends (the interval start for `Left`, the end for `Right`).
    Cont {
        /// Which direction the probe extends the interval.
        side: Side,
        /// The coverage boundary being extended.
        anchor_edge: u64,
    },
    /// Local hash: compared only within a predicted neighborhood, so
    /// `local_bits` wide.
    Local,
    /// Global hash: compared against every old-file position;
    /// `log2(old_len) + extra` bits, unless derivable and suppressed.
    Global {
        /// When set, the hash is not transmitted; the client derives it.
        suppressed: Option<Derivation>,
    },
}

/// One hashed region of the new file in a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Item {
    /// Offset in the new file.
    pub new_off: u64,
    /// Region length (equals the round's block size except for the tail).
    pub len: u64,
    /// What kind of hash covers it.
    pub kind: ItemKind,
}

impl Item {
    /// Bits this item occupies in the server's hash message.
    pub fn wire_bits(&self, cfg: &ProtocolConfig, global_bits: u32) -> u32 {
        match self.kind {
            ItemKind::Cont { .. } => cfg.cont_bits,
            ItemKind::Local => cfg.local_bits,
            ItemKind::Global { suppressed: Some(_) } => 0,
            ItemKind::Global { suppressed: None } => global_bits,
        }
    }
}

/// Width of global candidate hashes for a session: enough bits that the
/// expected number of false candidates per block is `2^-extra`.
pub fn global_hash_bits(old_len: u64, extra: u32) -> u32 {
    let log_n = 64 - old_len.max(2).leading_zeros();
    (log_n + extra).min(60)
}

/// Which slice of a round's items to enumerate. With the paper's §5.4
/// phase split ("first a search for matches using continuation hashes
/// on blocks adjacent to confirmed matches, and then a search using
/// global or local hashes") a level runs as two subrounds: `ContOnly`
/// first, then `Global` with the probed regions excluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundPhase {
    /// Probes and blocks together (single-phase rounds).
    Combined,
    /// Continuation probes only.
    ContOnly,
    /// Partition blocks only, excluding regions the continuation
    /// subround already probed (matched or not).
    Global,
}

/// Enumerate the items of one round.
///
/// `known_hashes` holds `(offset, len)` of blocks whose global hash
/// prefix the client already has (transmitted or derived in an earlier
/// round); the caller extends it with this round's global items
/// afterwards via [`extend_known_hashes`].
pub fn enumerate(
    cfg: &ProtocolConfig,
    coverage: &Coverage,
    known_hashes: &HashSet<(u64, u64)>,
    new_len: u64,
    level: u32,
) -> Vec<Item> {
    enumerate_phase(
        cfg,
        coverage,
        known_hashes,
        new_len,
        level,
        RoundPhase::Combined,
        &Coverage::new(),
    )
}

/// Phase-aware variant of [`enumerate`]; `excluded` carries the regions
/// a preceding continuation subround already probed.
pub fn enumerate_phase(
    cfg: &ProtocolConfig,
    coverage: &Coverage,
    known_hashes: &HashSet<(u64, u64)>,
    new_len: u64,
    level: u32,
    phase: RoundPhase,
    excluded: &Coverage,
) -> Vec<Item> {
    let d = cfg.block_size_at(level) as u64;
    let mut items = Vec::new();
    let mut claimed = excluded.clone();

    // Phase 1: continuation probes, extending every known interval.
    if phase != RoundPhase::Global && cfg.use_continuation && d >= cfg.min_block_cont as u64 {
        for &(a, b) in coverage.intervals() {
            if a >= d && coverage.is_free(a - d, d) && claimed.is_free(a - d, d) {
                claimed.insert(a - d, d);
                items.push(Item {
                    new_off: a - d,
                    len: d,
                    kind: ItemKind::Cont { side: Side::Left, anchor_edge: a },
                });
            }
            if b + d <= new_len && coverage.is_free(b, d) && claimed.is_free(b, d) {
                claimed.insert(b, d);
                items.push(Item {
                    new_off: b,
                    len: d,
                    kind: ItemKind::Cont { side: Side::Right, anchor_edge: b },
                });
            }
        }
        items.sort_by_key(|i| i.new_off);
    }

    // Phase 2: the recursive partition's active blocks.
    if phase != RoundPhase::ContOnly && d >= cfg.min_block_global as u64 && new_len > 0 {
        let local_reach = cfg.local_range_blocks * d;
        let mut globals: Vec<Item> = Vec::new();
        let n_blocks = new_len.div_ceil(d);
        for i in 0..n_blocks {
            let off = i * d;
            let len = d.min(new_len - off);
            // Tails smaller than half a block wait for deeper levels (or
            // the delta phase) rather than paying a full hash now.
            if len * 2 < d {
                continue;
            }
            if !coverage.is_free(off, len) || !claimed.is_free(off, len) {
                continue;
            }
            // §5.4: the sibling of a confirmed match rarely matches too —
            // its content would usually have been found with the parent.
            if cfg.skip_sibling_of_matched {
                let sib = off ^ d;
                if sib < new_len {
                    let sib_len = d.min(new_len - sib);
                    if coverage.contains(sib, sib_len) {
                        continue;
                    }
                }
            }
            let is_local = cfg.use_local
                && coverage.distance_to_nearest(off, len).is_some_and(|dist| dist <= local_reach);
            globals.push(Item {
                new_off: off,
                len,
                kind: if is_local {
                    ItemKind::Local
                } else {
                    ItemKind::Global { suppressed: None }
                },
            });
        }

        // Phase 3: decomposable-hash suppression over full-size global
        // blocks whose full-size parent hash the client knows.
        if cfg.use_decomposable {
            let active: HashSet<u64> = globals
                .iter()
                .filter(|it| matches!(it.kind, ItemKind::Global { .. }) && it.len == d)
                .map(|it| it.new_off)
                .collect();
            for it in globals.iter_mut() {
                if it.len != d {
                    continue;
                }
                let ItemKind::Global { suppressed } = &mut it.kind else { continue };
                let off = it.new_off;
                let parent_off = off & !(2 * d - 1);
                if parent_off + 2 * d > new_len {
                    continue; // parent not full-size
                }
                if !known_hashes.contains(&(parent_off, 2 * d)) {
                    continue;
                }
                let is_right = off == parent_off + d;
                let sibling_off = if is_right { parent_off } else { parent_off + d };
                let sibling_known_bytes = coverage.contains(sibling_off, d);
                if is_right {
                    // Right child derivable if the left is transmitted
                    // this round or its bytes are fully known.
                    if active.contains(&sibling_off) || sibling_known_bytes {
                        *suppressed = Some(Derivation { parent_off, sibling_off, is_right });
                    }
                } else {
                    // Left child derivable only from fully-known right
                    // bytes (never from a transmitted right sibling —
                    // that one is suppressed in favour of this one).
                    if sibling_known_bytes && !active.contains(&sibling_off) {
                        *suppressed = Some(Derivation { parent_off, sibling_off, is_right });
                    }
                }
            }
        }
        items.extend(globals);
    }

    items
}

/// After a round, record which block hashes the client now knows (all
/// global items — transmitted or derived).
pub fn extend_known_hashes(known: &mut HashSet<(u64, u64)>, items: &[Item]) {
    for it in items {
        if matches!(it.kind, ItemKind::Global { .. }) {
            known.insert((it.new_off, it.len));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_basic() -> ProtocolConfig {
        ProtocolConfig {
            start_block: 64,
            min_block_global: 16,
            min_block_cont: 8,
            use_continuation: true,
            use_local: false,
            use_decomposable: true,
            skip_sibling_of_matched: false,
            ..ProtocolConfig::default()
        }
    }

    #[test]
    fn level0_partitions_whole_file() {
        let cfg = cfg_basic();
        let cov = Coverage::new();
        let known = HashSet::new();
        let items = enumerate(&cfg, &cov, &known, 256, 0);
        // 4 blocks of 64, no coverage → no probes.
        assert_eq!(items.len(), 4);
        assert!(items.iter().all(|i| matches!(i.kind, ItemKind::Global { suppressed: None })));
        assert_eq!(items[0].new_off, 0);
        assert_eq!(items[3].new_off, 192);
    }

    #[test]
    fn covered_blocks_inactive() {
        let cfg = cfg_basic();
        let mut cov = Coverage::new();
        cov.insert(0, 64);
        let known = HashSet::new();
        let items = enumerate(&cfg, &cov, &known, 256, 0);
        // Block 0 covered; right probe at [64,128) claims that region, so
        // the level-0 block at 64 is excluded; blocks 128, 192 global.
        let probes: Vec<_> =
            items.iter().filter(|i| matches!(i.kind, ItemKind::Cont { .. })).collect();
        assert_eq!(probes.len(), 1);
        assert_eq!(probes[0].new_off, 64);
        let globals: Vec<_> = items
            .iter()
            .filter(|i| matches!(i.kind, ItemKind::Global { .. }))
            .map(|i| i.new_off)
            .collect();
        assert_eq!(globals, vec![128, 192]);
    }

    #[test]
    fn suppression_of_right_sibling() {
        let cfg = cfg_basic();
        let cov = Coverage::new();
        let mut known = HashSet::new();
        // Parent hashes from level 0 (size 64) are known.
        known.insert((0, 64));
        known.insert((64, 64));
        let items = enumerate(&cfg, &cov, &known, 128, 1); // size 32
        assert_eq!(items.len(), 4);
        let suppressed: Vec<_> = items
            .iter()
            .filter(|i| matches!(i.kind, ItemKind::Global { suppressed: Some(_) }))
            .map(|i| i.new_off)
            .collect();
        // Right child of each pair suppressed.
        assert_eq!(suppressed, vec![32, 96]);
        let der = items
            .iter()
            .find(|i| i.new_off == 32)
            .map(|i| match i.kind {
                ItemKind::Global { suppressed: Some(d) } => d,
                _ => panic!(),
            })
            .unwrap();
        assert_eq!(der.parent_off, 0);
        assert_eq!(der.sibling_off, 0);
        assert!(der.is_right);
    }

    #[test]
    fn no_suppression_without_parent_hash() {
        let cfg = cfg_basic();
        let cov = Coverage::new();
        let known = HashSet::new(); // parents unknown
        let items = enumerate(&cfg, &cov, &known, 128, 1);
        assert!(items.iter().all(|i| matches!(i.kind, ItemKind::Global { suppressed: None })));
    }

    #[test]
    fn left_derivable_from_covered_right() {
        // Continuation off so the probe does not claim the block first.
        let cfg = ProtocolConfig { use_continuation: false, ..cfg_basic() };
        let mut cov = Coverage::new();
        cov.insert(32, 32); // right child of parent [0,64) fully known
        let mut known = HashSet::new();
        known.insert((0, 64));
        let items = enumerate(&cfg, &cov, &known, 64, 1); // size 32
        let left = items.iter().find(|i| i.new_off == 0).unwrap();
        match left.kind {
            ItemKind::Global { suppressed: Some(d) } => {
                assert!(!d.is_right);
                assert_eq!(d.sibling_off, 32);
            }
            ref k => panic!("left not suppressed: {k:?}"),
        }
    }

    #[test]
    fn continuation_probes_both_sides() {
        let cfg = cfg_basic();
        let mut cov = Coverage::new();
        cov.insert(64, 64);
        let known = HashSet::new();
        // Level 2 → block size 16 < min_block_global? No: 16 == min. Use
        // level 3 (size 8) for probes-only behaviour (< min_global,
        // ≥ min_cont).
        let items = enumerate(&cfg, &cov, &known, 256, 3);
        assert_eq!(items.len(), 2);
        assert!(matches!(items[0].kind, ItemKind::Cont { side: Side::Left, anchor_edge: 64 }));
        assert_eq!(items[0].new_off, 56);
        assert!(matches!(items[1].kind, ItemKind::Cont { side: Side::Right, anchor_edge: 128 }));
        assert_eq!(items[1].new_off, 128);
    }

    #[test]
    fn probes_respect_file_bounds() {
        let cfg = cfg_basic();
        let mut cov = Coverage::new();
        cov.insert(0, 32); // at file start: no left probe
        let known = HashSet::new();
        let items = enumerate(&cfg, &cov, &known, 40, 3); // size 8
        let probes: Vec<_> =
            items.iter().filter(|i| matches!(i.kind, ItemKind::Cont { .. })).collect();
        assert_eq!(probes.len(), 1);
        assert_eq!(probes[0].new_off, 32);
        // Right probe would end at 48 > 40 after the one at 32..40? No:
        // [32,40) fits exactly.
        assert_eq!(probes[0].len, 8);
    }

    #[test]
    fn skip_sibling_of_matched() {
        let cfg = ProtocolConfig { skip_sibling_of_matched: true, ..cfg_basic() };
        let mut cov = Coverage::new();
        cov.insert(0, 64); // block 0 at level 0 confirmed
        let known = HashSet::new();
        // Disable continuation so the probe doesn't claim the sibling.
        let cfg = ProtocolConfig { use_continuation: false, ..cfg };
        let items = enumerate(&cfg, &cov, &known, 256, 0);
        let offs: Vec<_> = items.iter().map(|i| i.new_off).collect();
        // Sibling of [0,64) is [64,128) → skipped.
        assert_eq!(offs, vec![128, 192]);
    }

    #[test]
    fn small_tail_skipped() {
        let cfg = cfg_basic();
        let cov = Coverage::new();
        let known = HashSet::new();
        // File of 70 bytes at block size 64: tail of 6 < 32 → skipped.
        let items = enumerate(&cfg, &cov, &known, 70, 0);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].new_off, 0);
        // Tail of 40 ≥ 32 → included as a short item.
        let items = enumerate(&cfg, &cov, &known, 104, 0);
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].len, 40);
    }

    #[test]
    fn global_bits_scale_with_file() {
        assert_eq!(global_hash_bits(1 << 20, 8), 29);
        assert!(global_hash_bits(0, 8) >= 9);
        assert!(global_hash_bits(u64::MAX, 32) <= 60);
    }

    #[test]
    fn wire_bits_by_kind() {
        let cfg = cfg_basic();
        let g = 28;
        let mk = |kind| Item { new_off: 0, len: 16, kind };
        assert_eq!(
            mk(ItemKind::Cont { side: Side::Left, anchor_edge: 16 }).wire_bits(&cfg, g),
            cfg.cont_bits
        );
        assert_eq!(mk(ItemKind::Local).wire_bits(&cfg, g), cfg.local_bits);
        assert_eq!(mk(ItemKind::Global { suppressed: None }).wire_bits(&cfg, g), g);
        let der = Derivation { parent_off: 0, sibling_off: 16, is_right: true };
        assert_eq!(mk(ItemKind::Global { suppressed: Some(der) }).wire_bits(&cfg, g), 0);
    }
}
