//! Shared coverage of the new file — the interval structure both
//! endpoints keep in lockstep.
//!
//! The client's [`crate::map::FileMap`] carries *where in the old file*
//! each known area lives, which the server never learns. But both sides
//! must agree exactly on *which new-file ranges are known*, because the
//! set of active blocks, continuation probes, and hash suppressions in
//! each round is derived from it. `Coverage` is that shared view: a
//! sorted set of disjoint, maximally-merged intervals.

/// Sorted, disjoint, adjacency-merged intervals over `[0, file_len)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Coverage {
    /// `(start, end)` pairs, end exclusive, sorted, non-touching.
    ivals: Vec<(u64, u64)>,
}

impl Coverage {
    /// Empty coverage.
    pub fn new() -> Self {
        Self::default()
    }

    /// The merged intervals.
    pub fn intervals(&self) -> &[(u64, u64)] {
        &self.ivals
    }

    /// Total covered bytes.
    pub fn covered_bytes(&self) -> u64 {
        self.ivals.iter().map(|(s, e)| e - s).sum()
    }

    /// Mark `[start, start+len)` covered. The range must not overlap any
    /// existing interval (the protocol never confirms a region twice);
    /// touching ranges are merged.
    pub fn insert(&mut self, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        let end = start + len;
        let idx = self.ivals.partition_point(|&(s, _)| s < start);
        debug_assert!(idx == 0 || self.ivals[idx - 1].1 <= start, "overlap with predecessor");
        debug_assert!(
            idx == self.ivals.len() || end <= self.ivals[idx].0,
            "overlap with successor"
        );
        // Merge with neighbours that touch.
        let merge_prev = idx > 0 && self.ivals[idx - 1].1 == start;
        let merge_next = idx < self.ivals.len() && self.ivals[idx].0 == end;
        match (merge_prev, merge_next) {
            (true, true) => {
                self.ivals[idx - 1].1 = self.ivals[idx].1;
                self.ivals.remove(idx);
            }
            (true, false) => self.ivals[idx - 1].1 = end,
            (false, true) => self.ivals[idx].0 = start,
            (false, false) => self.ivals.insert(idx, (start, end)),
        }
    }

    /// Does `[start, start+len)` overlap nothing (fully unknown)?
    pub fn is_free(&self, start: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let end = start + len;
        let idx = self.ivals.partition_point(|&(_, e)| e <= start);
        match self.ivals.get(idx) {
            Some(&(s, _)) => s >= end,
            None => true,
        }
    }

    /// Is `[start, start+len)` fully covered?
    pub fn contains(&self, start: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let idx = self.ivals.partition_point(|&(_, e)| e <= start);
        match self.ivals.get(idx) {
            Some(&(s, e)) => s <= start && start + len <= e,
            None => false,
        }
    }

    /// Distance in bytes from the range `[start, start+len)` to the
    /// nearest covered interval (0 when touching or overlapping), or
    /// `None` when nothing is covered. Used to decide which blocks
    /// qualify for *local* hashes.
    pub fn distance_to_nearest(&self, start: u64, len: u64) -> Option<u64> {
        if self.ivals.is_empty() {
            return None;
        }
        let end = start + len;
        let idx = self.ivals.partition_point(|&(_, e)| e <= start);
        let mut best = u64::MAX;
        if idx < self.ivals.len() {
            let (s, _) = self.ivals[idx];
            best = best.min(s.saturating_sub(end));
        }
        if idx > 0 {
            let (_, e) = self.ivals[idx - 1];
            best = best.min(start.saturating_sub(e));
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_merge_and_queries() {
        let mut c = Coverage::new();
        c.insert(10, 10);
        c.insert(30, 10);
        assert_eq!(c.intervals(), &[(10, 20), (30, 40)]);
        c.insert(20, 10); // bridges the gap
        assert_eq!(c.intervals(), &[(10, 40)]);
        assert_eq!(c.covered_bytes(), 30);
        assert!(c.is_free(0, 10));
        assert!(!c.is_free(0, 11));
        assert!(!c.is_free(39, 5));
        assert!(c.is_free(40, 100));
        assert!(c.contains(10, 30));
        assert!(c.contains(15, 5));
        assert!(!c.contains(5, 10));
        assert!(!c.contains(35, 10));
    }

    #[test]
    fn merge_prev_only_and_next_only() {
        let mut c = Coverage::new();
        c.insert(0, 5);
        c.insert(5, 5);
        assert_eq!(c.intervals(), &[(0, 10)]);
        let mut c = Coverage::new();
        c.insert(5, 5);
        c.insert(0, 5);
        assert_eq!(c.intervals(), &[(0, 10)]);
    }

    #[test]
    fn zero_len_noop() {
        let mut c = Coverage::new();
        c.insert(5, 0);
        assert!(c.intervals().is_empty());
        assert!(c.contains(7, 0));
        assert!(c.is_free(7, 0));
    }

    #[test]
    fn dense_random_inserts_stay_consistent() {
        // Insert many disjoint blocks in shuffled order; final state must
        // be one merged interval.
        let order = [7usize, 2, 9, 0, 4, 1, 8, 3, 6, 5];
        let mut c = Coverage::new();
        for &i in &order {
            c.insert(i as u64 * 16, 16);
        }
        assert_eq!(c.intervals(), &[(0, 160)]);
    }
}
