//! Broadcast synchronization (paper §7: "we plan to look at
//! synchronization in asymmetric cases, e.g., in cases with server
//! broadcast capability, lower upload speed, or a bottleneck at a busy
//! server").
//!
//! One server updates N clients that hold *different* outdated versions
//! of the same file, over a broadcast downlink: bytes the server sends
//! once reach every client (satellite feeds, IP multicast CDN fills).
//! The interesting question is how much of the protocol is shareable:
//!
//! * the **candidate hashes are broadcast** — they depend only on the
//!   server's file, and the *included-block descriptor* (which blocks of
//!   the recursion are still live for at least one client) costs 2 bits
//!   per parent, so clients with different coverage can all follow one
//!   stream;
//! * decomposable-hash suppression still works, because hash knowledge
//!   comes from the shared stream and is therefore common to all
//!   receivers;
//! * verification, confirmation bitmaps, and the final deltas stay
//!   **individual** — they depend on each client's own file.
//!
//! Continuation probes and sibling-skip are client-specific by nature
//! and are disabled here; the broadcast recursion is the *basic*
//! protocol shared N ways. The `broadcast` experiment quantifies the
//! saving over N independent unicast sessions.

use crate::config::ProtocolConfig;
use crate::coverage::Coverage;
use crate::index::PositionIndex;
use crate::items::global_hash_bits;
use crate::map::{FileMap, Segment};
use crate::session::{sync_file, SyncError};
use crate::verify::{StepOutcome, VerifyState};
use msync_hash::decomposable::{prefix_decompose_right, DecomposableDigest};
use msync_hash::{file_fingerprint, BitReader, BitWriter, Md5};
use msync_protocol::frame_wire_size;

/// One included block of the shared recursion.
#[derive(Debug, Clone, Copy)]
struct Block {
    off: u64,
    len: u64,
    /// Derivable from parent + left sibling (both in the shared stream).
    suppressed: bool,
}

/// Outcome of a broadcast session.
#[derive(Debug, Clone)]
pub struct BroadcastOutcome {
    /// Each client's (exact) reconstruction.
    pub reconstructed: Vec<Vec<u8>>,
    /// Downlink bytes sent **once** for all clients (descriptors +
    /// candidate hashes).
    pub shared_s2c: u64,
    /// Downlink bytes sent per client (confirmations + deltas), summed.
    pub individual_s2c: u64,
    /// Uplink bytes, summed over clients.
    pub c2s: u64,
    /// What N independent unicast sessions with the same (basic)
    /// configuration would cost in total.
    pub unicast_total: u64,
}

impl BroadcastOutcome {
    /// Total downlink+uplink under broadcast.
    pub fn broadcast_total(&self) -> u64 {
        self.shared_s2c + self.individual_s2c + self.c2s
    }
}

/// Run the broadcast protocol: `new` at the server, one outdated version
/// per client in `olds`.
pub fn sync_broadcast(
    new: &[u8],
    olds: &[&[u8]],
    cfg: &ProtocolConfig,
) -> Result<BroadcastOutcome, SyncError> {
    cfg.validate().map_err(SyncError::Config)?;
    let n_clients = olds.len();
    let new_len = new.len() as u64;
    let max_old = olds.iter().map(|o| o.len() as u64).max().unwrap_or(0);
    let bits = global_hash_bits(max_old, cfg.global_extra_bits);

    let mut shared_s2c = 0u64;
    let mut individual_s2c = 0u64;
    let mut c2s = 0u64;

    // Setup: per-client fingerprints travel individually.
    c2s += n_clients as u64 * frame_wire_size(16 + 2);
    individual_s2c += n_clients as u64 * frame_wire_size(16 + 2);

    let mut coverages: Vec<Coverage> = vec![Coverage::new(); n_clients];
    let mut maps: Vec<FileMap> = vec![FileMap::new(); n_clients];

    // The shared *live span* set: regions that may still hold unmatched
    // content for some client. Clients track it from the descriptors, so
    // it is the one piece of cross-client state everyone agrees on.
    let mut live = Coverage::new();
    live.insert(0, new_len);
    // Hash prefixes (shared knowledge) of the previous level's full-size
    // included blocks, for decomposing suppressed right children.
    let mut prev_values: HashMap<(u64, u64), u64> = HashMap::new();

    let mut d = cfg.start_block as u64;
    while d >= cfg.min_block_global as u64 && live.covered_bytes() > 0 && new_len > 0 {
        // Descriptor: one bit per grid block inside the live spans
        // (sub-half tails pass through silently — grid arithmetic tells
        // every client the same thing).
        let mut included: Vec<Block> = Vec::new();
        let mut new_live = Coverage::new();
        let mut descriptor_bits = 0u64;
        let n_blocks = new_len.div_ceil(d);
        for i in 0..n_blocks {
            let off = i * d;
            let len = d.min(new_len - off);
            if live.is_free(off, len) {
                continue; // outside the live spans: settled at a previous level
            }
            if len * 2 < d {
                new_live.insert(off, len); // too small now; deeper levels retry
                continue;
            }
            descriptor_bits += 1;
            let live_for_some = coverages.iter().any(|cov| cov.is_free(off, len));
            if !live_for_some {
                continue;
            }
            included.push(Block { off, len, suppressed: false });
            new_live.insert(off, len);
        }
        shared_s2c += frame_wire_size((descriptor_bits as usize).div_ceil(8));
        if included.is_empty() {
            live = new_live;
            d /= 2;
            continue;
        }

        // Decomposable suppression over adjacent full-size pairs whose
        // parent hash everyone got at the previous level.
        if cfg.use_decomposable {
            for i in 1..included.len() {
                let (l, r) = (included[i - 1], included[i]);
                let parent_off = r.off & !(2 * d - 1);
                if l.len == d
                    && r.len == d
                    && l.off == parent_off
                    && r.off == parent_off + d
                    && prev_values.contains_key(&(parent_off, 2 * d))
                {
                    included[i].suppressed = true;
                }
            }
        }

        // Broadcast the hash stream once.
        let mut stream = BitWriter::new();
        for b in &included {
            if !b.suppressed {
                let h = DecomposableDigest::of(&new[b.off as usize..(b.off + b.len) as usize]);
                stream.write_bits(h.prefix(bits), bits);
            }
        }
        shared_s2c += frame_wire_size(stream.byte_len());
        let stream_bytes = stream.into_bytes();

        // Every client recovers the same per-block values (reading or
        // deriving), independent of its own coverage.
        let mut shared_values: Vec<u64> = Vec::with_capacity(included.len());
        {
            let mut r = BitReader::new(&stream_bytes);
            for (i, b) in included.iter().enumerate() {
                let v = if b.suppressed {
                    let parent = prev_values[&(b.off & !(2 * d - 1), 2 * d)];
                    prefix_decompose_right(parent, shared_values[i - 1], bits, b.len)
                } else {
                    r.read_bits(bits).map_err(|_| SyncError::Desync("broadcast stream"))?
                };
                shared_values.push(v);
            }
        }

        // Individual phase: candidates, verification, confirmations.
        for (ci, old) in olds.iter().enumerate() {
            let index = PositionIndex::build(old, d as usize, bits, cfg.max_positions_per_hash);
            let mut candidates = Vec::new();
            let mut cand_blocks = Vec::new();
            for (i, b) in included.iter().enumerate() {
                if b.len != d || !coverages[ci].is_free(b.off, b.len) {
                    continue;
                }
                if let Some(&pos) = index.lookup(shared_values[i]).first() {
                    candidates.push(Candidate { old_pos: pos as u64 });
                    cand_blocks.push(*b);
                }
            }
            // Uplink: candidate bitmap over the included blocks.
            c2s += frame_wire_size((included.len()).div_ceil(8));

            let mut verify = VerifyState::new(&cfg.verify, candidates.len());
            while !verify.is_trivially_done() {
                let vb = verify.batch_config().bits;
                let mut uplink = BitWriter::new();
                let mut results = Vec::new();
                for group in verify.groups() {
                    let mut cbuf = Vec::new();
                    let mut sbuf = Vec::new();
                    for &g in group {
                        let c = candidates[g];
                        let b = cand_blocks[g];
                        cbuf.extend_from_slice(
                            &olds[ci][c.old_pos as usize..(c.old_pos + b.len) as usize],
                        );
                        sbuf.extend_from_slice(&new[b.off as usize..(b.off + b.len) as usize]);
                    }
                    uplink.write_bits(Md5::digest_bits(&cbuf, vb), vb);
                    results.push(Md5::digest_bits(&cbuf, vb) == Md5::digest_bits(&sbuf, vb));
                }
                c2s += frame_wire_size(uplink.byte_len());
                individual_s2c += frame_wire_size(results.len().div_ceil(8));
                let outcome = verify.apply_results(&results);
                if outcome == StepOutcome::Done {
                    break;
                }
            }
            for &g in verify.confirmed() {
                let c = candidates[g];
                let b = cand_blocks[g];
                coverages[ci].insert(b.off, b.len);
                maps[ci].insert(Segment { new_off: b.off, old_off: c.old_pos, len: b.len });
            }
        }

        prev_values = included
            .iter()
            .enumerate()
            .filter(|(_, b)| b.len == d)
            .map(|(i, b)| ((b.off, b.len), shared_values[i]))
            .collect();
        live = new_live;
        d /= 2;
    }

    // Individual delta phase + fingerprint-checked reconstruction.
    let mut reconstructed = Vec::with_capacity(n_clients);
    let new_fp = file_fingerprint(new);
    for (ci, old) in olds.iter().enumerate() {
        let mut reference = Vec::with_capacity(coverages[ci].covered_bytes() as usize);
        for &(s, e) in coverages[ci].intervals() {
            reference.extend_from_slice(&new[s as usize..e as usize]);
        }
        let delta = msync_compress::delta_encode(&reference, new);
        individual_s2c += frame_wire_size(delta.len());
        let client_ref = maps[ci].reference_from_old(old);
        let out = msync_compress::delta_decode(&client_ref, &delta)
            .ok()
            .filter(|o| file_fingerprint(o) == new_fp)
            .unwrap_or_else(|| {
                // Residual failure: individual full resend.
                let full = msync_compress::compress(new);
                individual_s2c += frame_wire_size(full.len());
                new.to_vec()
            });
        reconstructed.push(out);
    }

    // Unicast comparison: N independent basic sessions (same feature
    // set as the broadcast recursion).
    let unicast_cfg = ProtocolConfig {
        use_continuation: false,
        skip_sibling_of_matched: false,
        min_block_cont: cfg.min_block_global,
        ..cfg.clone()
    };
    let mut unicast_total = 0u64;
    for old in olds {
        unicast_total += sync_file(old, new, &unicast_cfg)?.stats.total_bytes();
    }

    Ok(BroadcastOutcome { reconstructed, shared_s2c, individual_s2c, c2s, unicast_total })
}

#[derive(Debug, Clone, Copy)]
struct Candidate {
    old_pos: u64,
}

use std::collections::HashMap;

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(n: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(2).wrapping_add(1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 56) as u8
            })
            .collect()
    }

    fn cfg() -> ProtocolConfig {
        ProtocolConfig { start_block: 1 << 12, min_block_global: 64, ..Default::default() }
    }

    #[test]
    fn all_clients_reconstruct_exactly() {
        let new = blob(40_000, 1);
        let mut olds: Vec<Vec<u8>> = Vec::new();
        for i in 0..4u64 {
            let mut o = new.clone();
            let at = 5_000 + 7_000 * i as usize;
            o.splice(at..at + 100, blob(150, 100 + i));
            olds.push(o);
        }
        let refs: Vec<&[u8]> = olds.iter().map(|o| o.as_slice()).collect();
        let out = sync_broadcast(&new, &refs, &cfg()).unwrap();
        for r in &out.reconstructed {
            assert_eq!(r, &new);
        }
    }

    #[test]
    fn broadcast_beats_unicast_when_clients_miss_the_same_region() {
        // The CDN-fill case: every edge node is stale on the *same*
        // updated region (they all hold versions predating one edit), so
        // the live-block union equals a single client's live set and the
        // shared hash stream is paid once instead of N times.
        let new = blob(60_000, 2);
        let mut olds: Vec<Vec<u8>> = Vec::new();
        for i in 0..8u64 {
            let mut o = new.clone();
            // Same region stale everywhere; contents differ per client.
            o.splice(20_000..20_400, blob(400, 100 + i));
            olds.push(o);
        }
        let refs: Vec<&[u8]> = olds.iter().map(|o| o.as_slice()).collect();
        let out = sync_broadcast(&new, &refs, &cfg()).unwrap();
        for r in &out.reconstructed {
            assert_eq!(r, &new);
        }
        assert!(
            out.broadcast_total() < out.unicast_total,
            "broadcast {} vs unicast {}",
            out.broadcast_total(),
            out.unicast_total
        );
    }

    #[test]
    fn disjoint_changes_degrade_gracefully() {
        // When every client misses a *different* region, the live-block
        // union is the sum of the parts and broadcast cannot win — but
        // it must stay in the same ballpark as unicast.
        let new = blob(60_000, 2);
        let mut olds: Vec<Vec<u8>> = Vec::new();
        for i in 0..8u64 {
            let mut o = new.clone();
            o[(3_000 * (i as usize + 1)) % 50_000] ^= 0xFF;
            olds.push(o);
        }
        let refs: Vec<&[u8]> = olds.iter().map(|o| o.as_slice()).collect();
        let out = sync_broadcast(&new, &refs, &cfg()).unwrap();
        for r in &out.reconstructed {
            assert_eq!(r, &new);
        }
        assert!(out.broadcast_total() < out.unicast_total * 3 / 2);
    }

    #[test]
    fn single_client_roughly_matches_unicast() {
        let new = blob(30_000, 3);
        let mut old = new.clone();
        old.splice(10_000..10_050, blob(80, 9));
        let refs: Vec<&[u8]> = vec![&old];
        let out = sync_broadcast(&new, &refs, &cfg()).unwrap();
        assert_eq!(out.reconstructed[0], new);
        // Same family of protocol: within 2× of a unicast basic run.
        assert!(out.broadcast_total() < out.unicast_total * 2);
    }

    #[test]
    fn identical_client_costs_little() {
        let new = blob(20_000, 4);
        let far = blob(20_000, 5);
        let refs: Vec<&[u8]> = vec![&new, &far];
        let out = sync_broadcast(&new, &refs, &cfg()).unwrap();
        assert_eq!(out.reconstructed[0], new);
        assert_eq!(out.reconstructed[1], new);
    }

    #[test]
    fn empty_inputs() {
        let out = sync_broadcast(b"", &[], &cfg()).unwrap();
        assert!(out.reconstructed.is_empty());
        let old: &[u8] = b"";
        let out = sync_broadcast(b"fresh", &[old], &cfg()).unwrap();
        assert_eq!(out.reconstructed[0], b"fresh");
    }
}
