//! Content-defined chunking.
//!
//! The hash-based related work the paper discusses in §4 (LBFS,
//! Pastiche, value-based web caching, Spring–Wetherall) "use string
//! fingerprinting techniques proposed by Karp and Rabin to partition a
//! data stream into blocks in a consistent manner on both sides of a
//! communication link". A chunk boundary is declared wherever the
//! rolling fingerprint of the last `WINDOW` bytes hits a magic value
//! modulo the target size — so an insertion only disturbs the chunks it
//! touches, unlike fixed-size blocks where everything downstream shifts.

use msync_hash::rolling::RollingHash;
use msync_hash::RabinHash;

/// Rolling window the boundary test looks at (LBFS uses 48).
pub const WINDOW: usize = 48;

/// Chunking parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkParams {
    /// Average chunk size; must be a power of two (the boundary test is
    /// `fingerprint mod avg == avg - 1`).
    pub avg_size: usize,
    /// No boundary before this many bytes.
    pub min_size: usize,
    /// Forced boundary after this many bytes.
    pub max_size: usize,
}

impl Default for ChunkParams {
    /// ~2 KiB average: suited to the paper's ~15 KB web pages. (LBFS
    /// uses 8 KiB for whole file systems.)
    fn default() -> Self {
        Self { avg_size: 2048, min_size: 256, max_size: 16_384 }
    }
}

/// One chunk: `data[offset .. offset+len]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Start offset in the buffer.
    pub offset: usize,
    /// Chunk length.
    pub len: usize,
}

/// Split `data` into content-defined chunks. Concatenated chunks always
/// reproduce `data` exactly; the empty file has no chunks.
pub fn chunk(data: &[u8], params: &ChunkParams) -> Vec<Chunk> {
    assert!(params.avg_size.is_power_of_two(), "avg_size must be a power of two");
    assert!(params.min_size >= WINDOW, "min_size must cover the rolling window");
    assert!(params.max_size >= params.min_size);
    let mask = (params.avg_size - 1) as u64;
    let magic = mask; // boundary when low bits are all ones

    let mut chunks = Vec::with_capacity(data.len() / params.avg_size + 1);
    let mut start = 0usize;
    let mut h = RabinHash::new();
    while start < data.len() {
        let remaining = data.len() - start;
        if remaining <= params.min_size {
            chunks.push(Chunk { offset: start, len: remaining });
            break;
        }
        // Position the window so the first boundary test happens at
        // exactly min_size bytes into the chunk.
        let first_test = start + params.min_size;
        h.reset(&data[first_test - WINDOW..first_test]);
        let mut end = first_test;
        let hard_end = (start + params.max_size).min(data.len());
        loop {
            if h.value() & mask == magic || end >= hard_end {
                break;
            }
            h.roll(data[end - WINDOW], data[end]);
            end += 1;
        }
        chunks.push(Chunk { offset: start, len: end - start });
        start = end;
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn chunks_cover_exactly() {
        let d = data(100_000, 1);
        let chunks = chunk(&d, &ChunkParams::default());
        let mut pos = 0;
        for c in &chunks {
            assert_eq!(c.offset, pos);
            assert!(c.len > 0);
            pos += c.len;
        }
        assert_eq!(pos, d.len());
    }

    #[test]
    fn sizes_respect_bounds_and_average() {
        let d = data(400_000, 2);
        let p = ChunkParams::default();
        let chunks = chunk(&d, &p);
        for c in &chunks[..chunks.len() - 1] {
            assert!(c.len >= p.min_size, "chunk below min: {}", c.len);
            assert!(c.len <= p.max_size, "chunk above max: {}", c.len);
        }
        let avg = d.len() / chunks.len();
        assert!(
            (p.avg_size / 3..=p.avg_size * 3).contains(&avg),
            "average {avg} too far from target {}",
            p.avg_size
        );
    }

    #[test]
    fn insertion_only_disturbs_local_chunks() {
        // The CDC property: after inserting bytes in the middle, the
        // chunk sequences share a long common suffix (and prefix).
        let d = data(200_000, 3);
        let mut edited = d.clone();
        edited.splice(100_000..100_000, data(100, 4));
        let p = ChunkParams::default();
        let a = chunk(&d, &p);
        let b = chunk(&edited, &p);
        let hash =
            |buf: &[u8], c: &Chunk| msync_hash::Md5::digest(&buf[c.offset..c.offset + c.len]);
        let mut common_suffix = 0;
        while common_suffix < a.len().min(b.len()) {
            let ca = &a[a.len() - 1 - common_suffix];
            let cb = &b[b.len() - 1 - common_suffix];
            if ca.len != cb.len || hash(&d, ca) != hash(&edited, cb) {
                break;
            }
            common_suffix += 1;
        }
        assert!(
            common_suffix * 3 > a.len(),
            "only {common_suffix}/{} trailing chunks survived an insertion",
            a.len()
        );
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let p = ChunkParams::default();
        assert!(chunk(b"", &p).is_empty());
        let tiny = chunk(b"abc", &p);
        assert_eq!(tiny.len(), 1);
        assert_eq!(tiny[0], Chunk { offset: 0, len: 3 });
    }

    #[test]
    fn deterministic() {
        let d = data(50_000, 5);
        let p = ChunkParams::default();
        assert_eq!(chunk(&d, &p), chunk(&d, &p));
    }
}
