//! LBFS-style synchronization over content-defined chunks — the
//! OS-community alternative the paper's related work (§4) describes:
//! "these techniques use string fingerprinting techniques proposed by
//! Karp and Rabin to partition a data stream into blocks in a
//! consistent manner on both sides of a communication link, and then
//! send hash values to encode repeated substrings."
//!
//! Protocol (two roundtrips):
//!
//! 1. client → server: old-file fingerprint (skip unchanged files);
//! 2. server → client: content-defined chunk descriptors of `f_new`
//!    (8-byte strong hash + varint length each);
//! 3. client → server: bitmap of chunks it can produce from `f_old`
//!    (it chunks its own file with the same parameters and indexes the
//!    hashes);
//! 4. server → client: the missing chunks, concatenated and compressed
//!    gzip-style.
//!
//! Included as a second practical baseline between rsync and msync: CDC
//! is insertion-robust like msync's map, but it pays a fixed ~10 bytes
//! per *chunk of the whole file* every sync, where msync's recursion
//! pays only for regions that changed.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod chunker;

pub use chunker::{chunk, Chunk, ChunkParams};

use msync_hash::{file_fingerprint, BitReader, BitWriter, Md5};
use msync_protocol::{frame_wire_size, Direction, Phase, TrafficStats};
use std::collections::HashMap;

/// Bytes of strong hash per chunk descriptor on the wire.
pub const CHUNK_HASH_BYTES: usize = 8;

/// Result of one CDC synchronization.
#[derive(Debug, Clone)]
pub struct CdcOutcome {
    /// The client's reconstruction (always exact).
    pub reconstructed: Vec<u8>,
    /// Wire traffic.
    pub stats: TrafficStats,
    /// Chunks of the new file / chunks the client already had.
    pub chunks_total: usize,
    /// Chunks the client could supply locally.
    pub chunks_hit: usize,
    /// Whether the full-file fallback fired.
    pub fell_back: bool,
}

fn chunk_hash(data: &[u8]) -> u64 {
    Md5::digest_bits(data, 64)
}

/// Synchronize `old` (client) to `new` (server) via content-defined
/// chunks, accounting every byte.
pub fn sync(old: &[u8], new: &[u8], params: &ChunkParams) -> CdcOutcome {
    let mut stats = TrafficStats::new();
    let old_fp = file_fingerprint(old);
    let new_fp = file_fingerprint(new);
    stats.record(Direction::ClientToServer, Phase::Setup, frame_wire_size(16));
    if old_fp == new_fp {
        stats.roundtrips = 1;
        return CdcOutcome {
            reconstructed: old.to_vec(),
            stats,
            chunks_total: 0,
            chunks_hit: 0,
            fell_back: false,
        };
    }

    // Server: describe the new file chunk by chunk.
    let new_chunks = chunk(new, params);
    let mut desc = BitWriter::new();
    desc.write_varint(new_chunks.len() as u64);
    for c in &new_chunks {
        desc.write_bits(chunk_hash(&new[c.offset..c.offset + c.len]), 64);
        desc.write_varint(c.len as u64);
    }
    let desc_bytes = desc.into_bytes();
    stats.record(Direction::ServerToClient, Phase::Map, frame_wire_size(desc_bytes.len()));

    // Client: index its own chunks and answer which it has.
    let old_chunks = chunk(old, params);
    let mut have: HashMap<(u64, usize), usize> = HashMap::new();
    for c in &old_chunks {
        have.entry((chunk_hash(&old[c.offset..c.offset + c.len]), c.len)).or_insert(c.offset);
    }
    let mut r = BitReader::new(&desc_bytes);
    let count = r.read_varint().expect("own descriptor stream") as usize;
    let mut bitmap = BitWriter::new();
    let mut hits: Vec<Option<usize>> = Vec::with_capacity(count);
    for _ in 0..count {
        let h = r.read_bits(64).expect("own descriptor stream");
        let len = r.read_varint().expect("own descriptor stream") as usize;
        let hit = have.get(&(h, len)).copied();
        bitmap.write_bit(hit.is_some());
        hits.push(hit);
    }
    let bitmap_bytes = bitmap.into_bytes();
    stats.record(Direction::ClientToServer, Phase::Map, frame_wire_size(bitmap_bytes.len()));

    // Server: send the missing chunks (it reads the client's bitmap).
    let mut rb = BitReader::new(&bitmap_bytes);
    let mut missing = Vec::new();
    for c in &new_chunks {
        if !rb.read_bit().expect("own bitmap") {
            missing.extend_from_slice(&new[c.offset..c.offset + c.len]);
        }
    }
    let missing_wire = msync_compress::compress(&missing);
    stats.record(Direction::ServerToClient, Phase::Delta, frame_wire_size(missing_wire.len()));

    // Client: assemble.
    let missing_data = msync_compress::decompress(&missing_wire).expect("own stream");
    let mut out = Vec::with_capacity(new.len());
    let mut missing_pos = 0usize;
    let mut lens = BitReader::new(&desc_bytes);
    let _ = lens.read_varint();
    for hit in &hits {
        let _h = lens.read_bits(64).expect("own descriptor stream");
        let len = lens.read_varint().expect("own descriptor stream") as usize;
        match hit {
            Some(off) => out.extend_from_slice(&old[*off..*off + len]),
            None => {
                out.extend_from_slice(&missing_data[missing_pos..missing_pos + len]);
                missing_pos += len;
            }
        }
    }

    stats.roundtrips = 2;
    let chunks_hit = hits.iter().filter(|h| h.is_some()).count();
    if file_fingerprint(&out) == new_fp {
        CdcOutcome { reconstructed: out, stats, chunks_total: count, chunks_hit, fell_back: false }
    } else {
        // 64-bit chunk-hash collision (astronomically unlikely): resend.
        let full = msync_compress::compress(new);
        stats.record(Direction::ServerToClient, Phase::Delta, frame_wire_size(full.len()));
        stats.roundtrips = 3;
        CdcOutcome {
            reconstructed: new.to_vec(),
            stats,
            chunks_total: count,
            chunks_hit,
            fell_back: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn reconstructs_exactly() {
        let old = data(60_000, 1);
        let mut new = old.clone();
        new.splice(30_000..30_000, b"inserted run of new bytes".iter().copied());
        let out = sync(&old, &new, &ChunkParams::default());
        assert_eq!(out.reconstructed, new);
        assert!(!out.fell_back);
        assert!(out.chunks_hit * 10 >= out.chunks_total * 8, "most chunks should hit");
    }

    #[test]
    fn insertion_cost_is_local() {
        let old = data(120_000, 2);
        let mut new = old.clone();
        new.splice(60_000..60_000, data(64, 3));
        let out = sync(&old, &new, &ChunkParams::default());
        assert_eq!(out.reconstructed, new);
        // Fixed descriptor cost + a couple of chunks of payload, far
        // below retransmission.
        assert!(
            out.stats.total_bytes() < 12_000,
            "CDC cost {} for a 64-byte insertion",
            out.stats.total_bytes()
        );
    }

    #[test]
    fn unchanged_file_is_fingerprint_only() {
        let d = data(40_000, 4);
        let out = sync(&d, &d, &ChunkParams::default());
        assert_eq!(out.reconstructed, d);
        assert!(out.stats.total_bytes() < 32);
    }

    #[test]
    fn unrelated_files_still_exact() {
        let old = data(20_000, 5);
        let new = data(25_000, 99);
        let out = sync(&old, &new, &ChunkParams::default());
        assert_eq!(out.reconstructed, new);
        assert_eq!(out.chunks_hit, 0);
    }

    #[test]
    fn empty_files() {
        let out = sync(b"", b"", &ChunkParams::default());
        assert_eq!(out.reconstructed, b"");
        let out = sync(b"", &data(5_000, 6), &ChunkParams::default());
        assert_eq!(out.reconstructed, data(5_000, 6));
        let out = sync(&data(5_000, 6), b"", &ChunkParams::default());
        assert_eq!(out.reconstructed, b"");
    }

    #[test]
    fn duplicate_chunks_resolved() {
        // The same chunk appearing twice in the new file must be served
        // from one old occurrence.
        let block = data(4_000, 7);
        let old = block.clone();
        let mut new = block.clone();
        new.extend_from_slice(b"--separator--");
        new.extend_from_slice(&block);
        let out = sync(&old, &new, &ChunkParams::default());
        assert_eq!(out.reconstructed, new);
    }
}
