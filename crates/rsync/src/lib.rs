//! A from-scratch reimplementation of the **rsync algorithm**
//! (Tridgell & MacKerras), the baseline the paper improves on.
//!
//! Protocol (one roundtrip):
//!
//! 1. the client partitions its outdated file into fixed-size blocks and
//!    sends a 4-byte rolling checksum + 2-byte MD4 truncation per block;
//! 2. the server slides a window over its current file, matching against
//!    the received signatures at *every* offset (the rolling checksum
//!    makes this O(1) per position), and answers with a stream of literal
//!    bytes and block indices, compressed gzip-style;
//! 3. the client replays the stream against its own blocks.
//!
//! A strong whole-file fingerprint guards against the (unlikely) failure
//! of both checksums, in which case the server falls back to sending the
//! compressed file.
//!
//! Two variants are exposed, matching the paper's comparison columns:
//! [`sync`] with a caller-chosen (default 700-byte) block size, and
//! [`optimal::sync_optimal`] — an idealized rsync that knows the best
//! power-of-two block size for each file.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod inplace;
pub mod matcher;
pub mod optimal;
pub mod reconstruct;
pub mod signature;

pub use signature::{Signatures, DEFAULT_BLOCK_SIZE};

use msync_hash::file_fingerprint;
use msync_protocol::{Direction, Phase, TrafficStats};

/// Result of one rsync run.
#[derive(Debug, Clone)]
pub struct RsyncOutcome {
    /// The client's reconstruction of the server's file.
    pub reconstructed: Vec<u8>,
    /// Wire traffic, split by direction and phase.
    pub stats: TrafficStats,
    /// Whether the strong-fingerprint fallback (full file transfer) fired.
    pub fell_back: bool,
}

/// Synchronize `old` (client) to `new` (server) with the given block
/// size, accounting every byte that would cross the wire.
///
/// rsync is single-roundtrip and fully deterministic, so rather than
/// spinning up channel threads the driver performs the three steps
/// in-process and charges each message to the shared [`TrafficStats`];
/// byte counts are identical to a channel run (framing included).
pub fn sync(old: &[u8], new: &[u8], block_size: usize) -> RsyncOutcome {
    let mut stats = TrafficStats::new();

    // Setup: the client announces the file with its strong fingerprint
    // (used by collection sync to skip unchanged files and to verify the
    // result). 16 bytes upstream is the paper's accounting.
    let old_fp = file_fingerprint(old);
    let new_fp = file_fingerprint(new);
    stats.record(Direction::ClientToServer, Phase::Setup, charged(16));
    if old_fp == new_fp {
        stats.roundtrips = 1;
        return RsyncOutcome { reconstructed: old.to_vec(), stats, fell_back: false };
    }

    // Step 1: client → server signatures (uncompressed, as in rsync).
    let sigs = Signatures::compute(old, block_size);
    let sig_wire = sigs.encode();
    stats.record(Direction::ClientToServer, Phase::Map, charged(sig_wire.len()));

    // Steps 2–3: server matches and sends the compressed token stream,
    // client replays it. The streams are self-produced so the decodes
    // cannot fail in practice, but protocol code must not panic: any
    // failure degrades to the same full-file fallback a checksum
    // collision takes.
    let reconstructed = (|| {
        let sigs_at_server = Signatures::decode(&sig_wire)?;
        let tokens = matcher::match_tokens(new, &sigs_at_server);
        let token_wire = msync_compress::compress(&matcher::serialize_tokens(&tokens));
        stats.record(Direction::ServerToClient, Phase::Delta, charged(token_wire.len()));
        let decoded = matcher::deserialize_tokens(&msync_compress::decompress(&token_wire).ok()?)?;
        reconstruct::apply(old, &sigs, &decoded).ok()
    })();

    stats.roundtrips = 1;
    if let Some(reconstructed) = reconstructed.filter(|r| file_fingerprint(r) == new_fp) {
        RsyncOutcome { reconstructed, stats, fell_back: false }
    } else {
        // Checksum collision slipped a wrong block through: fall back to
        // transferring the whole compressed file (paper §2.2: "or we can
        // simply transfer the entire file").
        let full = msync_compress::compress(new);
        stats.record(Direction::ServerToClient, Phase::Delta, charged(full.len()));
        stats.roundtrips = 2;
        RsyncOutcome { reconstructed: new.to_vec(), stats, fell_back: true }
    }
}

/// Frame-size charge for a `len`-byte message (varint length prefix).
fn charged(len: usize) -> u64 {
    msync_protocol::frame_wire_size(len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, seed: u32) -> Vec<u8> {
        (0..n)
            .map(|i| (((i as u32).wrapping_mul(2654435761).wrapping_add(seed)) >> 24) as u8)
            .collect()
    }

    #[test]
    fn sync_reconstructs_exactly() {
        let old = sample(20_000, 1);
        let mut new = old.clone();
        new.splice(3_000..3_100, b"replacement segment".iter().copied());
        new.truncate(18_000);
        let out = sync(&old, &new, 700);
        assert_eq!(out.reconstructed, new);
        assert!(!out.fell_back);
    }

    #[test]
    fn unchanged_file_costs_only_fingerprint() {
        let data = sample(50_000, 2);
        let out = sync(&data, &data, 700);
        assert_eq!(out.reconstructed, data);
        assert!(out.stats.total_bytes() < 32);
    }

    #[test]
    fn small_change_is_cheap() {
        let old = sample(100_000, 3);
        let mut new = old.clone();
        new[50_000] ^= 0xFF;
        let out = sync(&old, &new, 700);
        assert_eq!(out.reconstructed, new);
        // One dirty block of 700 B + signatures (6 B per 700 B block).
        assert!(
            out.stats.total_bytes() < 4_000,
            "cost {} for a 1-byte change",
            out.stats.total_bytes()
        );
    }

    #[test]
    fn completely_new_file_still_correct() {
        let old = sample(10_000, 4);
        let new = sample(10_000, 999);
        let out = sync(&old, &new, 700);
        assert_eq!(out.reconstructed, new);
    }

    #[test]
    fn empty_files() {
        let out = sync(b"", b"", 700);
        assert_eq!(out.reconstructed, b"");
        let out = sync(b"", b"fresh content", 700);
        assert_eq!(out.reconstructed, b"fresh content");
        let out = sync(b"old content", b"", 700);
        assert_eq!(out.reconstructed, b"");
    }

    #[test]
    fn stats_directions_split() {
        let old = sample(50_000, 5);
        let mut new = old.clone();
        new[0] = !new[0];
        let out = sync(&old, &new, 700);
        // Signatures upstream: ~6 B per block ≈ 72 blocks ≈ 430 B.
        assert!(out.stats.total_c2s() > 300);
        assert!(out.stats.total_s2c() > 0);
        assert_eq!(out.stats.roundtrips, 1);
    }

    #[test]
    fn block_move_detected() {
        // Swap two halves: rsync matches both halves as blocks.
        let a = sample(10_000, 6);
        let b = sample(10_000, 7);
        let old = [a.clone(), b.clone()].concat();
        let new = [b, a].concat();
        let out = sync(&old, &new, 500);
        assert_eq!(out.reconstructed, new);
        assert!(out.stats.total_bytes() < 2_000, "block move cost {}", out.stats.total_bytes());
    }
}
