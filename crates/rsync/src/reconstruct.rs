//! Client-side reconstruction (rsync step 3a): apply the token stream to
//! the old file to obtain the new one.

use crate::matcher::Token;
use crate::signature::Signatures;

/// Errors during reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconstructError {
    /// A block index referenced a block the client does not have.
    BadBlockIndex,
}

impl std::fmt::Display for ReconstructError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "token stream references an unknown block")
    }
}

impl std::error::Error for ReconstructError {}

/// Apply `tokens` to the client's `old` file, using the block geometry in
/// `sigs` (which the client computed itself).
pub fn apply(old: &[u8], sigs: &Signatures, tokens: &[Token]) -> Result<Vec<u8>, ReconstructError> {
    let mut out = Vec::new();
    for t in tokens {
        match t {
            Token::Literal(bytes) => out.extend_from_slice(bytes),
            Token::Block(idx) => {
                let idx = *idx as usize;
                if idx >= sigs.blocks.len() {
                    return Err(ReconstructError::BadBlockIndex);
                }
                let start = idx * sigs.block_size;
                let len = sigs.block_len(idx);
                if start + len > old.len() {
                    return Err(ReconstructError::BadBlockIndex);
                }
                out.extend_from_slice(&old[start..start + len]);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::match_tokens;

    #[test]
    fn end_to_end_reconstruction() {
        let old: Vec<u8> = (0..10_000u32).map(|i| ((i * 13) % 256) as u8).collect();
        let mut new = old.clone();
        new.splice(5_000..5_000, b"some inserted bytes".iter().copied());
        new.extend_from_slice(b"appended tail");
        let sigs = Signatures::compute(&old, 700);
        let tokens = match_tokens(&new, &sigs);
        assert_eq!(apply(&old, &sigs, &tokens).unwrap(), new);
    }

    #[test]
    fn bad_index_rejected() {
        let old = vec![0u8; 100];
        let sigs = Signatures::compute(&old, 50);
        let tokens = vec![Token::Block(99)];
        assert_eq!(apply(&old, &sigs, &tokens), Err(ReconstructError::BadBlockIndex));
    }

    #[test]
    fn empty_token_stream() {
        let sigs = Signatures::compute(b"", 50);
        assert_eq!(apply(b"", &sigs, &[]).unwrap(), Vec::<u8>::new());
    }
}
