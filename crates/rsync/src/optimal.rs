//! Idealized rsync with per-file optimal block size.
//!
//! The paper compares not just against rsync's default block size but
//! against "rsync with an optimally chosen block size for each individual
//! file" — an oracle no real deployment has, but a fair strongest-form
//! baseline. This module sweeps power-of-two block sizes and reports the
//! cheapest run.

use crate::{sync, RsyncOutcome};

/// Block sizes the oracle considers (the paper notes the optimum is
/// usually within a small factor of the best power of two).
pub const CANDIDATE_SIZES: &[usize] = &[64, 128, 256, 512, 1024, 2048, 4096, 8192];

/// Run rsync at every candidate block size and return the cheapest
/// outcome along with the block size that achieved it.
pub fn sync_optimal(old: &[u8], new: &[u8]) -> (RsyncOutcome, usize) {
    let first = CANDIDATE_SIZES.first().copied().unwrap_or(crate::DEFAULT_BLOCK_SIZE);
    let mut best = (sync(old, new, first), first);
    for &bs in CANDIDATE_SIZES.iter().skip(1) {
        let out = sync(old, new, bs);
        if out.stats.total_bytes() < best.0.stats.total_bytes() {
            best = (out, bs);
        }
    }
    best
}

/// Just the cost in bytes of the oracle run (convenience for benches).
pub fn optimal_cost(old: &[u8], new: &[u8]) -> u64 {
    sync_optimal(old, new).0.stats.total_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, seed: u32) -> Vec<u8> {
        // xorshift64*: properly incompressible pseudo-random bytes, so
        // literal runs do not vanish under the gzip stage.
        let mut state = seed as u64 | 0x9E37_79B9_0000_0001;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn optimal_not_worse_than_default_candidates() {
        let old = sample(30_000, 1);
        let mut new = old.clone();
        new[10_000] ^= 1;
        new[20_000] ^= 1;
        let (best, bs) = sync_optimal(&old, &new);
        assert_eq!(best.reconstructed, new);
        assert!(CANDIDATE_SIZES.contains(&bs));
        for &candidate in CANDIDATE_SIZES {
            let out = sync(&old, &new, candidate);
            assert!(best.stats.total_bytes() <= out.stats.total_bytes());
        }
    }

    #[test]
    fn few_changes_prefer_large_blocks() {
        // One tiny change in a big file: large blocks amortize signatures.
        let old = sample(200_000, 2);
        let mut new = old.clone();
        new[100_000] ^= 0xFF;
        let (_, bs) = sync_optimal(&old, &new);
        assert!(bs >= 1024, "expected large optimal block, got {bs}");
    }

    #[test]
    fn dispersed_changes_prefer_small_blocks() {
        // A change every ~600 bytes: big blocks all get dirtied.
        let old = sample(60_000, 3);
        let mut new = old.clone();
        for i in (300..60_000).step_by(600) {
            new[i] ^= 0xFF;
        }
        let (_, bs) = sync_optimal(&old, &new);
        assert!(bs <= 512, "expected small optimal block, got {bs}");
    }
}
