//! Client-side block signatures (rsync step 1).
//!
//! The client partitions its outdated file into fixed-size blocks and
//! sends, per block, a 4-byte rolling checksum and a 2-byte truncation of
//! the MD4 digest — the paper's "6 bytes per block are transmitted from
//! client to server".

use msync_hash::{Md4, RsyncRolling};

/// rsync's default block size in this era (the paper evaluates "rsync
/// with default block size" against this).
pub const DEFAULT_BLOCK_SIZE: usize = 700;

/// Number of wire bytes per block signature.
pub const SIG_BYTES_PER_BLOCK: usize = 6;

/// Per-block signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSig {
    /// 32-bit rolling checksum of the block.
    pub rolling: u32,
    /// First two bytes of the block's MD4 digest.
    pub strong: u16,
}

/// Signatures of every block of the client's file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signatures {
    /// Block size used to partition the file.
    pub block_size: usize,
    /// One signature per block; the final block may be short.
    pub blocks: Vec<BlockSig>,
    /// Length of the final (possibly short) block, 0 for an empty file.
    pub last_block_len: usize,
}

/// Strong checksum for rsync blocks: the first two bytes of MD4.
pub fn strong16(block: &[u8]) -> u16 {
    let d = Md4::digest(block);
    u16::from_le_bytes([d[0], d[1]])
}

impl Signatures {
    /// Compute signatures of `old` with the given block size.
    pub fn compute(old: &[u8], block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        let mut blocks = Vec::with_capacity(old.len() / block_size + 1);
        let mut last_block_len = 0;
        for chunk in old.chunks(block_size) {
            blocks
                .push(BlockSig { rolling: RsyncRolling::checksum(chunk), strong: strong16(chunk) });
            last_block_len = chunk.len();
        }
        Self { block_size, blocks, last_block_len }
    }

    /// Wire encoding: block size, count, then 6 bytes per block.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(10 + self.blocks.len() * SIG_BYTES_PER_BLOCK);
        out.extend_from_slice(&(self.block_size as u32).to_le_bytes());
        out.extend_from_slice(&(self.blocks.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.last_block_len as u32).to_le_bytes());
        for b in &self.blocks {
            out.extend_from_slice(&b.rolling.to_le_bytes());
            out.extend_from_slice(&b.strong.to_le_bytes());
        }
        out
    }

    /// Decode the wire form.
    pub fn decode(data: &[u8]) -> Option<Self> {
        if data.len() < 12 {
            return None;
        }
        let block_size = u32::from_le_bytes(data[0..4].try_into().ok()?) as usize;
        let count = u32::from_le_bytes(data[4..8].try_into().ok()?) as usize;
        let last_block_len = u32::from_le_bytes(data[8..12].try_into().ok()?) as usize;
        if block_size == 0 || data.len() != 12 + count * SIG_BYTES_PER_BLOCK {
            return None;
        }
        let mut blocks = Vec::with_capacity(count);
        for i in 0..count {
            let off = 12 + i * SIG_BYTES_PER_BLOCK;
            blocks.push(BlockSig {
                rolling: u32::from_le_bytes(data[off..off + 4].try_into().ok()?),
                strong: u16::from_le_bytes(data[off + 4..off + 6].try_into().ok()?),
            });
        }
        Some(Self { block_size, blocks, last_block_len })
    }

    /// Length in bytes of block `idx` of the original file.
    pub fn block_len(&self, idx: usize) -> usize {
        if idx + 1 == self.blocks.len() {
            self.last_block_len
        } else {
            self.block_size
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_counts_blocks() {
        let data = vec![7u8; 2500];
        let sigs = Signatures::compute(&data, 700);
        assert_eq!(sigs.blocks.len(), 4);
        assert_eq!(sigs.last_block_len, 400);
        assert_eq!(sigs.block_len(0), 700);
        assert_eq!(sigs.block_len(3), 400);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 256) as u8).collect();
        let sigs = Signatures::compute(&data, 512);
        let wire = sigs.encode();
        assert_eq!(wire.len(), 12 + sigs.blocks.len() * 6);
        assert_eq!(Signatures::decode(&wire).unwrap(), sigs);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Signatures::decode(&[]).is_none());
        assert!(Signatures::decode(&[0; 12]).is_none()); // zero block size
        let data = vec![1u8; 100];
        let mut wire = Signatures::compute(&data, 10).encode();
        wire.pop();
        assert!(Signatures::decode(&wire).is_none());
    }

    #[test]
    fn empty_file() {
        let sigs = Signatures::compute(b"", 700);
        assert!(sigs.blocks.is_empty());
        let wire = sigs.encode();
        assert_eq!(Signatures::decode(&wire).unwrap(), sigs);
    }

    #[test]
    fn exact_multiple_of_block_size() {
        let data = vec![3u8; 1400];
        let sigs = Signatures::compute(&data, 700);
        assert_eq!(sigs.blocks.len(), 2);
        assert_eq!(sigs.last_block_len, 700);
    }
}
