//! Server-side matching and token-stream generation (rsync steps 2–3).
//!
//! The server slides a window of the block size over its current file,
//! checks the rolling checksum against a hash table of the client's block
//! signatures, and confirms hits with the 2-byte strong hash. The output
//! is a stream of literal runs and block references, which is then
//! compressed "using an algorithm similar to gzip" before transmission.

use crate::signature::{strong16, Signatures};
use msync_hash::rolling::RollingHash;
use msync_hash::RsyncRolling;
use std::collections::HashMap;

/// One element of the reconstruction stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Raw bytes not present in the client's file.
    Literal(Vec<u8>),
    /// Index of a client block to copy verbatim.
    Block(u32),
}

/// Scan `new` against the client's `sigs`, producing the token stream.
pub fn match_tokens(new: &[u8], sigs: &Signatures) -> Vec<Token> {
    let block_size = sigs.block_size;
    let mut by_rolling: HashMap<u32, Vec<u32>> = HashMap::new();
    for (i, b) in sigs.blocks.iter().enumerate() {
        // Only full-size blocks participate in the sliding search; the
        // final short block is matched separately at the tail.
        if sigs.block_len(i) == block_size {
            by_rolling.entry(b.rolling).or_default().push(i as u32);
        }
    }

    let mut tokens = Vec::new();
    let mut lit_start = 0usize;
    let mut pos = 0usize;
    let flush = |tokens: &mut Vec<Token>, from: usize, to: usize| {
        if to > from {
            tokens.push(Token::Literal(new[from..to].to_vec()));
        }
    };

    if new.len() >= block_size && !by_rolling.is_empty() {
        let mut roll = RsyncRolling::new();
        roll.reset(&new[..block_size]);
        loop {
            let window = &new[pos..pos + block_size];
            let mut matched = None;
            if let Some(cands) = by_rolling.get(&(roll.value() as u32)) {
                let strong = strong16(window);
                for &idx in cands {
                    if sigs.blocks[idx as usize].strong == strong {
                        matched = Some(idx);
                        break;
                    }
                }
            }
            if let Some(idx) = matched {
                flush(&mut tokens, lit_start, pos);
                tokens.push(Token::Block(idx));
                pos += block_size;
                lit_start = pos;
                if pos + block_size > new.len() {
                    break;
                }
                roll.reset(&new[pos..pos + block_size]);
            } else {
                if pos + block_size >= new.len() {
                    break;
                }
                roll.roll(new[pos], new[pos + block_size]);
                pos += 1;
            }
        }
    }

    // Tail: try to match the client's final short block against the very
    // end of the file (the common append-only case), otherwise literal.
    let tail_start = lit_start;
    let mut tail_done = false;
    if !sigs.blocks.is_empty() && sigs.last_block_len < block_size && sigs.last_block_len > 0 {
        let last_idx = sigs.blocks.len() - 1;
        let llen = sigs.last_block_len;
        if new.len() >= tail_start + llen && new.len() - llen >= tail_start {
            let cand = &new[new.len() - llen..];
            let sig = &sigs.blocks[last_idx];
            if RsyncRolling::checksum(cand) == sig.rolling && strong16(cand) == sig.strong {
                flush(&mut tokens, tail_start, new.len() - llen);
                tokens.push(Token::Block(last_idx as u32));
                tail_done = true;
            }
        }
    }
    if !tail_done {
        flush(&mut tokens, tail_start, new.len());
    }
    tokens
}

/// Serialize a token stream compactly (before gzip-like compression):
/// per token a 1-byte tag, then varint length + bytes or varint index.
pub fn serialize_tokens(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tokens {
        match t {
            Token::Literal(bytes) => {
                out.push(0);
                write_leb(&mut out, bytes.len() as u64);
                out.extend_from_slice(bytes);
            }
            Token::Block(idx) => {
                out.push(1);
                write_leb(&mut out, *idx as u64);
            }
        }
    }
    out
}

/// Inverse of [`serialize_tokens`].
pub fn deserialize_tokens(data: &[u8]) -> Option<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut pos = 0usize;
    while pos < data.len() {
        let tag = data[pos];
        pos += 1;
        match tag {
            0 => {
                let len = read_leb(data, &mut pos)? as usize;
                if pos + len > data.len() {
                    return None;
                }
                tokens.push(Token::Literal(data[pos..pos + len].to_vec()));
                pos += len;
            }
            1 => {
                let idx = read_leb(data, &mut pos)?;
                tokens.push(Token::Block(u32::try_from(idx).ok()?));
            }
            _ => return None,
        }
    }
    Some(tokens)
}

fn write_leb(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_leb(input: &[u8], pos: &mut usize) -> Option<u64> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *input.get(*pos)?;
        *pos += 1;
        out |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(out);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_files_all_blocks() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let sigs = Signatures::compute(&data, 512);
        let tokens = match_tokens(&data, &sigs);
        assert!(tokens.iter().all(|t| matches!(t, Token::Block(_))));
        assert_eq!(tokens.len(), 8);
    }

    #[test]
    fn disjoint_files_all_literal() {
        let old = vec![0u8; 2048];
        let new: Vec<u8> = (0..2048u32).map(|i| (i % 199 + 1) as u8).collect();
        let sigs = Signatures::compute(&old, 512);
        let tokens = match_tokens(&new, &sigs);
        let total_lit: usize = tokens
            .iter()
            .map(|t| match t {
                Token::Literal(v) => v.len(),
                _ => 0,
            })
            .sum();
        assert_eq!(total_lit, new.len());
    }

    #[test]
    fn shifted_content_still_matches() {
        // Insert bytes at the front; rolling search must realign.
        let old: Vec<u8> = (0..4000u32).map(|i| ((i * 7) % 256) as u8).collect();
        let mut new = b"INSERTED PREFIX ".to_vec();
        new.extend_from_slice(&old);
        let sigs = Signatures::compute(&old, 500);
        let tokens = match_tokens(&new, &sigs);
        let n_blocks = tokens.iter().filter(|t| matches!(t, Token::Block(_))).count();
        assert!(n_blocks >= 7, "only {n_blocks} blocks matched after shift");
    }

    #[test]
    fn serialize_roundtrip() {
        let tokens = vec![
            Token::Literal(b"hello".to_vec()),
            Token::Block(3),
            Token::Block(200),
            Token::Literal(vec![0u8; 300]),
        ];
        let wire = serialize_tokens(&tokens);
        assert_eq!(deserialize_tokens(&wire).unwrap(), tokens);
    }

    #[test]
    fn deserialize_rejects_garbage() {
        assert!(deserialize_tokens(&[9]).is_none());
        assert!(deserialize_tokens(&[0, 0x80]).is_none()); // unterminated leb
        assert!(deserialize_tokens(&[0, 10, 1, 2]).is_none()); // short literal
    }

    #[test]
    fn empty_inputs() {
        let sigs = Signatures::compute(b"", 512);
        assert!(match_tokens(b"", &sigs).is_empty());
        let tokens = match_tokens(b"abc", &sigs);
        assert_eq!(tokens, vec![Token::Literal(b"abc".to_vec())]);
    }
}
