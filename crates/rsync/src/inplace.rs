//! In-place reconstruction (Rasch & Burns, USENIX '03 — the paper's
//! related work [40]: "a version of the rsync algorithm that updates
//! files in-place without using additional temporary space").
//!
//! Ordinary reconstruction writes a second copy of the file; on the
//! mobile/wireless devices the in-place variant targets, there is no
//! room for two copies. The token stream instead *overwrites* the old
//! file's buffer. That creates read-after-write hazards: a block
//! reference reads old bytes that an earlier write may have clobbered.
//!
//! The classic solution, implemented here:
//!
//! 1. build the dependency graph — output command `i` depends on output
//!    command `j` if `j`'s output range overlaps the old-file range `i`
//!    still needs to read;
//! 2. emit commands in topological order, so every read happens before
//!    the write that would clobber it;
//! 3. break dependency *cycles* by materializing one block's source
//!    bytes out of the buffer (the only extra space used: one block per
//!    cycle, held until the final write pass).
//!
//! Literal bytes carry no read dependency and are written last-minute.

use crate::matcher::Token;
use crate::reconstruct::ReconstructError;
use crate::signature::Signatures;

/// One output command: write `len` bytes at target offset `dst`,
/// sourced either from the old file at `src` or from literal bytes.
#[derive(Debug, Clone)]
enum Command {
    CopyOld { dst: usize, src: usize, len: usize },
    Literal { dst: usize, bytes: Vec<u8> },
}

/// Statistics of one in-place run, for tests and curiosity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InplaceStats {
    /// Copy commands executed.
    pub copies: usize,
    /// Dependency cycles broken by materializing a block.
    pub cycles_broken: usize,
    /// Peak scratch bytes used to break cycles.
    pub peak_scratch: usize,
}

/// Apply `tokens` to `buf` **in place**: on entry `buf` holds the old
/// file, on exit the new one. `sigs` supplies the old block geometry
/// (the client computed it in step 1).
///
/// Extra memory is bounded by the bytes of cycle-broken blocks (one
/// block per cycle, held until the final literal pass) plus the literal
/// bytes of the stream itself.
pub fn apply_inplace(
    buf: &mut Vec<u8>,
    sigs: &Signatures,
    tokens: &[Token],
) -> Result<InplaceStats, ReconstructError> {
    // Pass 1: lay out the output and validate block references.
    let old_len = buf.len();
    let mut commands = Vec::with_capacity(tokens.len());
    let mut dst = 0usize;
    for t in tokens {
        match t {
            Token::Literal(bytes) => {
                commands.push(Command::Literal { dst, bytes: bytes.clone() });
                dst += bytes.len();
            }
            Token::Block(idx) => {
                let idx = *idx as usize;
                if idx >= sigs.blocks.len() {
                    return Err(ReconstructError::BadBlockIndex);
                }
                let src = idx * sigs.block_size;
                let len = sigs.block_len(idx);
                if src + len > old_len {
                    return Err(ReconstructError::BadBlockIndex);
                }
                commands.push(Command::CopyOld { dst, src, len });
                dst += len;
            }
        }
    }
    let new_len = dst;
    buf.resize(old_len.max(new_len), 0);

    // Pass 2: order the copies. A copy may run once no still-pending
    // copy needs to read from its destination. The sweep below is
    // quadratic in the number of copy commands, which is tens per file
    // for realistic token streams.
    let mut pending: Vec<usize> =
        (0..commands.len()).filter(|&i| matches!(commands[i], Command::CopyOld { .. })).collect();
    let mut done = vec![false; commands.len()];
    let mut stats = InplaceStats::default();

    // Iteratively execute copies whose source range is not overwritten
    // by any still-pending copy's destination; if none qualifies, break
    // a cycle by materializing one command's source.
    let mut scratch: Vec<u8> = Vec::new();
    while !pending.is_empty() {
        let mut progressed = false;
        let mut next_pending = Vec::with_capacity(pending.len());
        for &i in &pending {
            let (dst_i, src_i, len_i) = match commands[i] {
                Command::CopyOld { dst, src, len } => (dst, src, len),
                Command::Literal { .. } => unreachable!("pending holds copies only"),
            };
            // Executing i writes [dst_i, dst_i+len_i); it must wait
            // while any other pending copy still needs to *read* from
            // that range (i overwriting its own source is fine —
            // copy_within has memmove semantics).
            let hazard = pending.iter().any(|&j| {
                if j == i || done[j] {
                    return false;
                }
                match commands[j] {
                    Command::CopyOld { src: src_j, len: len_j, .. } => {
                        ranges_overlap(dst_i, len_i, src_j, len_j)
                    }
                    Command::Literal { .. } => false,
                }
            });
            if hazard {
                next_pending.push(i);
            } else {
                buf.copy_within(src_i..src_i + len_i, dst_i);
                done[i] = true;
                stats.copies += 1;
                progressed = true;
            }
        }
        if !progressed && !next_pending.is_empty() {
            // Cycle: every pending copy's source is someone's target.
            // Materialize the first one into scratch and retire it.
            let i = next_pending.remove(0);
            let (dst_i, src_i, len_i) = match commands[i] {
                Command::CopyOld { dst, src, len } => (dst, src, len),
                Command::Literal { .. } => unreachable!("pending holds copies only"),
            };
            scratch.clear();
            scratch.extend_from_slice(&buf[src_i..src_i + len_i]);
            stats.peak_scratch = stats.peak_scratch.max(scratch.len());
            stats.cycles_broken += 1;
            stats.copies += 1;
            // Rewrite the command as a literal from scratch: it no
            // longer reads the buffer, so it stops blocking the copies
            // that write over its old source — but its own *write* still
            // happens in pass 3, after every remaining copy has read.
            commands[i] = Command::Literal { dst: dst_i, bytes: scratch.clone() };
        }
        pending = next_pending;
    }

    // Pass 3: literals (no read dependencies; writing them last means
    // they can never clobber a copy's source before it runs — any copy
    // reading a region a literal writes was ordered above only against
    // copies, so literals must come after *all* copies... which is safe
    // because copies never read literal output: they read old bytes).
    for c in &commands {
        if let Command::Literal { dst, bytes } = c {
            buf[*dst..*dst + bytes.len()].copy_from_slice(bytes);
        }
    }

    buf.truncate(new_len);
    Ok(stats)
}

#[inline]
fn ranges_overlap(a: usize, a_len: usize, b: usize, b_len: usize) -> bool {
    a < b + b_len && b < a + a_len
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::match_tokens;
    use crate::signature::Signatures;

    fn run_inplace(old: &[u8], new: &[u8], block: usize) -> (Vec<u8>, InplaceStats) {
        let sigs = Signatures::compute(old, block);
        let tokens = match_tokens(new, &sigs);
        let mut buf = old.to_vec();
        let stats = apply_inplace(&mut buf, &sigs, &tokens).unwrap();
        (buf, stats)
    }

    fn blob(n: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn identity_update() {
        let data = blob(5_000, 1);
        let (out, stats) = run_inplace(&data, &data, 512);
        assert_eq!(out, data);
        assert_eq!(stats.cycles_broken, 0);
    }

    #[test]
    fn shift_right_forces_ordering() {
        // Insert at front: every block moves right; block k's target
        // overlaps block k+1's source, so copies must run back-to-front.
        let old = blob(8_192, 2);
        let mut new = b"PREFIX--".to_vec();
        new.extend_from_slice(&old);
        let (out, _) = run_inplace(&old, &new, 512);
        assert_eq!(out, new);
    }

    #[test]
    fn shift_left_forces_opposite_ordering() {
        let old = blob(8_192, 3);
        let new = old[512..].to_vec(); // delete the first block
        let (out, _) = run_inplace(&old, &new, 512);
        assert_eq!(out, new);
    }

    #[test]
    fn swap_creates_cycle() {
        // Swapping two halves makes each half's destination the other's
        // source — a 2-cycle the scratch buffer must break.
        let a = blob(2_048, 4);
        let b = blob(2_048, 9); // distinct after the generator's `| 1`
        let old = [a.clone(), b.clone()].concat();
        let new = [b, a].concat();
        let (out, stats) = run_inplace(&old, &new, 1_024);
        assert_eq!(out, new);
        assert!(stats.cycles_broken > 0, "swap must require cycle breaking");
        assert!(stats.peak_scratch <= 1_024);
    }

    #[test]
    fn rotation_long_cycle() {
        // Rotate blocks by one: a single long dependency cycle.
        let old = blob(8 * 512, 6);
        let mut new = old[512..].to_vec();
        new.extend_from_slice(&old[..512]);
        let (out, stats) = run_inplace(&old, &new, 512);
        assert_eq!(out, new);
        assert!(stats.peak_scratch <= 512);
    }

    #[test]
    fn grow_and_shrink() {
        let old = blob(10_000, 7);
        let mut grown = old.clone();
        grown.splice(5_000..5_000, blob(3_000, 8));
        let (out, _) = run_inplace(&old, &grown, 700);
        assert_eq!(out, grown);

        let mut shrunk = old.clone();
        shrunk.drain(2_000..6_000);
        let (out, _) = run_inplace(&old, &shrunk, 700);
        assert_eq!(out, shrunk);
    }

    #[test]
    fn completely_new_content() {
        let old = blob(4_000, 9);
        let new = blob(4_000, 10);
        let (out, stats) = run_inplace(&old, &new, 512);
        assert_eq!(out, new);
        assert_eq!(stats.copies, 0);
    }

    #[test]
    fn bad_index_rejected() {
        let old = blob(1_000, 11);
        let sigs = Signatures::compute(&old, 500);
        let mut buf = old.clone();
        let err = apply_inplace(&mut buf, &sigs, &[Token::Block(42)]);
        assert_eq!(err, Err(ReconstructError::BadBlockIndex));
    }

    #[test]
    fn matches_out_of_place_on_random_edits() {
        let old = blob(20_000, 12);
        for seed in 13..18u64 {
            let mut new = old.clone();
            let at = (seed as usize * 2_711) % 15_000;
            new.splice(at..at + 500, blob(900, seed));
            let sigs = Signatures::compute(&old, 700);
            let tokens = match_tokens(&new, &sigs);
            let expected = crate::reconstruct::apply(&old, &sigs, &tokens).unwrap();
            let mut buf = old.clone();
            apply_inplace(&mut buf, &sigs, &tokens).unwrap();
            assert_eq!(buf, expected);
            assert_eq!(buf, new);
        }
    }
}
