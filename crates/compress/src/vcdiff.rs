//! A vcdiff-like byte-aligned delta format (Korn–Vo, RFC 3284 family).
//!
//! The paper compares against the `vcdiff` tool as a second delta
//! baseline. This module implements the same instruction family — ADD
//! (literal bytes), COPY (from an address space of reference followed by
//! target-so-far), RUN (repeated byte) — with byte-aligned LEB128 coding
//! and no entropy stage, which is why it trails the Huffman-backed
//! [`crate::delta`] coder, just as vcdiff trails zdelta in the paper.

use crate::lz77::{HashChains, MIN_MATCH};

/// Errors from [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcdiffError {
    /// Stream truncated or internally inconsistent.
    Corrupt,
}

impl std::fmt::Display for VcdiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt vcdiff stream")
    }
}

impl std::error::Error for VcdiffError {}

const OP_ADD: u8 = 0;
const OP_COPY: u8 = 1;
const OP_RUN: u8 = 2;

fn write_leb(out: &mut Vec<u8>, mut v: u64) {
    loop {
        // Masked to 7 bits, so the byte conversion cannot lose data.
        let byte = u8::try_from(v & 0x7F).unwrap_or(0x7F);
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_leb(input: &[u8], pos: &mut usize) -> Result<u64, VcdiffError> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *input.get(*pos).ok_or(VcdiffError::Corrupt)?;
        *pos += 1;
        out |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
        if shift >= 64 {
            return Err(VcdiffError::Corrupt);
        }
    }
}

/// Instruction byte: 2-bit type in the high bits, 6-bit size in the low
/// bits; size 0 means an LEB128 size follows.
fn write_instr(out: &mut Vec<u8>, op: u8, size: u64) {
    if (1..=63).contains(&size) {
        // In-range check above guarantees size fits the 6-bit field.
        out.push((op << 6) | u8::try_from(size).unwrap_or(0));
    } else {
        out.push(op << 6);
        write_leb(out, size);
    }
}

/// Encode `target` relative to `reference`.
pub fn encode(reference: &[u8], target: &[u8]) -> Vec<u8> {
    let ref_chains = HashChains::new_full(reference);
    let mut self_chains = HashChains::new(target);
    let mut out = Vec::new();
    write_leb(&mut out, target.len() as u64);

    let mut pos = 0usize;
    let mut lit_start = 0usize;
    let flush_lits = |out: &mut Vec<u8>, from: usize, to: usize| {
        if to > from {
            write_instr(out, OP_ADD, (to - from) as u64);
            out.extend_from_slice(&target[from..to]);
        }
    };
    while pos < target.len() {
        // RUN detection: 4+ identical bytes.
        let b = target[pos];
        let mut run = 1;
        while pos + run < target.len() && target[pos + run] == b && run < (1 << 24) {
            run += 1;
        }
        self_chains.index_to(pos);
        let ref_m = ref_chains.longest_match(target, pos, reference.len(), 128);
        let self_m = self_chains.longest_match(target, pos, pos, 128);
        let copy = match (ref_m, self_m) {
            (Some((rp, rl)), Some((_, sl))) if rl >= sl => Some((rp as u64, rl)),
            (_, Some((sp, sl))) => Some((reference.len() as u64 + sp as u64, sl)),
            (Some((rp, rl)), None) => Some((rp as u64, rl)),
            (None, None) => None,
        };
        let copy_len = copy.map_or(0, |(_, l)| l);
        if run >= MIN_MATCH && run >= copy_len {
            flush_lits(&mut out, lit_start, pos);
            write_instr(&mut out, OP_RUN, run as u64);
            out.push(b);
            pos += run;
            lit_start = pos;
        } else if let Some((addr, len)) = copy.filter(|&(_, l)| l >= MIN_MATCH) {
            flush_lits(&mut out, lit_start, pos);
            write_instr(&mut out, OP_COPY, len as u64);
            write_leb(&mut out, addr);
            pos += len;
            lit_start = pos;
        } else {
            pos += 1;
        }
    }
    flush_lits(&mut out, lit_start, target.len());
    out
}

/// Decode a delta produced by [`encode`] against the same `reference`.
pub fn decode(reference: &[u8], delta: &[u8]) -> Result<Vec<u8>, VcdiffError> {
    let mut pos = 0usize;
    let target_len_raw = read_leb(delta, &mut pos)?;
    if target_len_raw > (1 << 32) {
        return Err(VcdiffError::Corrupt);
    }
    let target_len = usize::try_from(target_len_raw).map_err(|_| VcdiffError::Corrupt)?;
    // Allocate incrementally: `orig_len` is untrusted wire data, so a
    // corrupt header must not be able to demand gigabytes up front.
    let mut out = Vec::with_capacity(target_len.min(1 << 20));
    while out.len() < target_len {
        let instr = *delta.get(pos).ok_or(VcdiffError::Corrupt)?;
        pos += 1;
        let op = instr >> 6;
        let size = if instr & 0x3F != 0 {
            usize::from(instr & 0x3F)
        } else {
            usize::try_from(read_leb(delta, &mut pos)?).map_err(|_| VcdiffError::Corrupt)?
        };
        if out.len().checked_add(size).is_none_or(|end| end > target_len) {
            return Err(VcdiffError::Corrupt);
        }
        match op {
            OP_ADD => {
                let end = pos.checked_add(size).ok_or(VcdiffError::Corrupt)?;
                if end > delta.len() {
                    return Err(VcdiffError::Corrupt);
                }
                out.extend_from_slice(&delta[pos..end]);
                pos = end;
            }
            OP_RUN => {
                let byte = *delta.get(pos).ok_or(VcdiffError::Corrupt)?;
                pos += 1;
                out.resize(out.len() + size, byte);
            }
            OP_COPY => {
                let addr = usize::try_from(read_leb(delta, &mut pos)?)
                    .map_err(|_| VcdiffError::Corrupt)?;
                if addr < reference.len() {
                    // Copy from reference; may not cross into target space.
                    let end = addr.checked_add(size).ok_or(VcdiffError::Corrupt)?;
                    if end > reference.len() {
                        return Err(VcdiffError::Corrupt);
                    }
                    out.extend_from_slice(&reference[addr..end]);
                } else {
                    let taddr = addr - reference.len();
                    if taddr >= out.len() {
                        return Err(VcdiffError::Corrupt);
                    }
                    for i in 0..size {
                        let b = out[taddr + i];
                        out.push(b);
                    }
                }
            }
            _ => return Err(VcdiffError::Corrupt),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_similar() {
        let reference = b"line one\nline two\nline three\nline four\n".repeat(25);
        let mut target = reference.clone();
        target.extend_from_slice(b"line five appended\n");
        let d = encode(&reference, &target);
        assert_eq!(decode(&reference, &d).unwrap(), target);
        assert!(d.len() < 80, "vcdiff delta is {} bytes", d.len());
    }

    #[test]
    fn roundtrip_run_heavy() {
        let reference = b"".to_vec();
        let mut target = vec![0u8; 5000];
        target.extend_from_slice(b"tail");
        let d = encode(&reference, &target);
        assert_eq!(decode(&reference, &d).unwrap(), target);
        assert!(d.len() < 32);
    }

    #[test]
    fn roundtrip_empty() {
        assert_eq!(decode(b"", &encode(b"", b"")).unwrap(), b"");
        assert_eq!(decode(b"ref", &encode(b"ref", b"")).unwrap(), b"");
    }

    #[test]
    fn roundtrip_self_copy() {
        // Target repeats its own prefix, absent from the reference.
        let reference = b"completely different".to_vec();
        let block = b"NEW-CONTENT-BLOCK-0123456789";
        let mut target = Vec::new();
        for _ in 0..20 {
            target.extend_from_slice(block);
        }
        let d = encode(&reference, &target);
        assert_eq!(decode(&reference, &d).unwrap(), target);
        assert!(d.len() < target.len() / 3);
    }

    #[test]
    fn corrupt_errors() {
        let reference = b"reference bytes".repeat(5);
        let target = b"reference bytes!".repeat(5);
        let d = encode(&reference, &target);
        for cut in [0, 1, d.len() / 2] {
            let out = decode(&reference, &d[..cut]);
            if let Ok(v) = out {
                assert_ne!(v, target);
            }
        }
    }

    #[test]
    fn leb_roundtrip() {
        let mut buf = Vec::new();
        let vals = [0u64, 1, 63, 64, 127, 128, 1 << 20, u64::MAX];
        for &v in &vals {
            write_leb(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &vals {
            assert_eq!(read_leb(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }
}
