//! Compression substrate for msync.
//!
//! Everything the paper's pipeline compresses with goes through this
//! crate, implemented from scratch:
//!
//! * [`huffman`] — canonical, length-limited Huffman coding (the entropy
//!   backend).
//! * [`lz77`] — hash-chain match finding shared by all coders.
//! * [`lz`] — a gzip-like stream compressor (LZ77 + dynamic Huffman),
//!   standing in for the paper's "algorithm similar to gzip" that
//!   compresses rsync's token stream and the baselines of Table 6.2.
//! * [`delta`] — a zdelta-like reference-based delta compressor: the
//!   protocol's delta phase and the paper's lower-bound comparator.
//! * [`vcdiff`] — a vcdiff-like byte-aligned delta coder, the paper's
//!   second delta baseline.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod delta;
pub mod huffman;
pub mod lz;
pub mod lz77;
pub mod vcdiff;

pub use delta::{decode as delta_decode, delta_size, encode as delta_encode, DeltaError};
pub use lz::{compress, decompress, LzError};
pub use vcdiff::{decode as vcdiff_decode, encode as vcdiff_encode, VcdiffError};

/// Compressed size of `data` under the gzip-like coder — the "gzip"
/// column of the paper's Table 6.2.
pub fn gzip_size(data: &[u8]) -> usize {
    compress(data).len()
}
