//! Reference-based delta compression (zdelta-like).
//!
//! Encodes a *target* file relative to a *reference* file available to
//! both sides, using LZ77 where the match window covers the whole
//! reference as well as the already-emitted target. This plays two roles
//! in the reproduction:
//!
//! * it is the **delta phase** of the msync protocol (paper §5.1: "good
//!   delta compression tools for the second phase are already available";
//!   they use zdelta); and
//! * run with both full files local, it is the **lower-bound comparator**
//!   ("the best delta compressor ... provides a reasonable lower bound in
//!   practice").
//!
//! Like zdelta, reference addresses are encoded as movements of a cursor
//! that tracks sequential locality, and everything is entropy-coded with
//! canonical Huffman tables.

use crate::huffman::{build_lengths, HuffmanCode, HuffmanDecoder};
use crate::lz::{gamma_bin, GAMMA_BINS};
use crate::lz77::{HashChains, MIN_MATCH};
use msync_hash::{BitReader, BitWriter};
use std::sync::OnceLock;

/// Errors from [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaError {
    /// Stream truncated or internally inconsistent.
    Corrupt,
    /// The reference supplied to `decode` does not match the one used by
    /// `encode` (detected via out-of-range copies; byte-level mismatches
    /// are caught by the caller's fingerprint check).
    ReferenceMismatch,
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Corrupt => write!(f, "corrupt delta stream"),
            Self::ReferenceMismatch => write!(f, "delta does not fit the reference"),
        }
    }
}

impl std::error::Error for DeltaError {}

/// Op alphabet: literals, EOB, then length bins for the two copy sources.
const EOB: usize = 256;
const REF_LEN_BASE: usize = 257;
const SELF_LEN_BASE: usize = REF_LEN_BASE + GAMMA_BINS;
const OP_SYMS: usize = SELF_LEN_BASE + GAMMA_BINS;

const MAX_CHAIN: u32 = 256;

#[derive(Debug, Clone, Copy)]
enum Op {
    Literal(u8),
    CopyRef { pos: u64, len: u64 },
    CopySelf { dist: u64, len: u64 },
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Produce the op stream for `target` given `reference`.
fn parse_ops(reference: &[u8], target: &[u8]) -> Vec<Op> {
    let ref_chains = HashChains::new_full(reference);
    let mut self_chains = HashChains::new(target);
    let mut ops = Vec::with_capacity(target.len() / 8 + 8);
    let mut pos = 0usize;
    while pos < target.len() {
        self_chains.index_to(pos);
        let ref_m = ref_chains.longest_match(target, pos, reference.len(), MAX_CHAIN);
        let self_m = self_chains.longest_match(target, pos, pos, MAX_CHAIN);
        let best = match (ref_m, self_m) {
            (Some((rp, rl)), Some((sp, sl))) => {
                if sl >= rl {
                    // Prefer self copies on ties: distances are usually
                    // cheaper than absolute reference positions.
                    Some(Op::CopySelf { dist: (pos - sp) as u64, len: sl as u64 })
                } else {
                    Some(Op::CopyRef { pos: rp as u64, len: rl as u64 })
                }
            }
            (Some((rp, rl)), None) => Some(Op::CopyRef { pos: rp as u64, len: rl as u64 }),
            (None, Some((sp, sl))) => {
                Some(Op::CopySelf { dist: (pos - sp) as u64, len: sl as u64 })
            }
            (None, None) => None,
        };
        match best {
            Some(op) => {
                let len = match op {
                    Op::CopyRef { len, .. } | Op::CopySelf { len, .. } => len as usize,
                    Op::Literal(_) => unreachable!(),
                };
                ops.push(op);
                pos += len;
            }
            None => {
                ops.push(Op::Literal(target[pos]));
                pos += 1;
            }
        }
    }
    ops
}

/// Fixed (protocol-constant) code tables for small deltas, where the
/// ~100–150 bytes of dynamic table headers would dominate. Both sides
/// derive them from the same synthetic frequency profile, so nothing is
/// transmitted; the encoder emits whichever mode is smaller, signaled by
/// one bit.
fn fixed_codes() -> &'static (HuffmanCode, HuffmanCode) {
    static CODES: OnceLock<(HuffmanCode, HuffmanCode)> = OnceLock::new();
    CODES.get_or_init(|| {
        let mut op_freq = vec![1u64; OP_SYMS];
        for (b, f) in op_freq.iter_mut().enumerate().take(256) {
            // ASCII-ish literal skew.
            *f = if (32..127).contains(&b) { 24 } else { 6 };
        }
        op_freq[EOB] = 64;
        for bin in 0..GAMMA_BINS {
            op_freq[REF_LEN_BASE + bin] = (512 >> bin.min(9)).max(1);
            op_freq[SELF_LEN_BASE + bin] = (256 >> bin.min(8)).max(1);
        }
        let mut addr_freq = vec![1u64; GAMMA_BINS];
        for (bin, f) in addr_freq.iter_mut().enumerate() {
            *f = (1024 >> bin.min(10)).max(1);
        }
        let op = HuffmanCode::from_lengths(&build_lengths(&op_freq)).expect("static profile valid");
        let addr =
            HuffmanCode::from_lengths(&build_lengths(&addr_freq)).expect("static profile valid");
        (op, addr)
    })
}

/// Serialize `ops` under the given codes; `with_tables` also writes the
/// code-length tables (dynamic mode).
fn write_stream(
    target_len: usize,
    ops: &[Op],
    op_code: &HuffmanCode,
    addr_code: &HuffmanCode,
    fixed_mode: bool,
) -> Vec<u8> {
    let mut w = BitWriter::new();
    w.write_varint(target_len as u64);
    w.write_bit(fixed_mode);
    if !fixed_mode {
        super::lz::write_table(&mut w, op_code.lengths());
        super::lz::write_table(&mut w, addr_code.lengths());
    }
    let mut cursor: i64 = 0;
    for op in ops {
        match *op {
            Op::Literal(b) => op_code.encode(&mut w, b as usize),
            Op::CopyRef { pos, len } => {
                let (bin, ebits, extra) = gamma_bin(len - MIN_MATCH as u64 + 1);
                op_code.encode(&mut w, REF_LEN_BASE + bin as usize);
                w.write_bits(extra, ebits);
                let offset = zigzag(pos as i64 - cursor) + 1;
                let (abin, aebits, aextra) = gamma_bin(offset);
                addr_code.encode(&mut w, abin as usize);
                w.write_bits(aextra, aebits);
                cursor = (pos + len) as i64;
            }
            Op::CopySelf { dist, len } => {
                let (bin, ebits, extra) = gamma_bin(len - MIN_MATCH as u64 + 1);
                op_code.encode(&mut w, SELF_LEN_BASE + bin as usize);
                w.write_bits(extra, ebits);
                let (abin, aebits, aextra) = gamma_bin(dist);
                addr_code.encode(&mut w, abin as usize);
                w.write_bits(aextra, aebits);
            }
        }
    }
    op_code.encode(&mut w, EOB);
    w.into_bytes()
}

/// Encode `target` relative to `reference`.
pub fn encode(reference: &[u8], target: &[u8]) -> Vec<u8> {
    let ops = parse_ops(reference, target);

    let mut op_freq = vec![0u64; OP_SYMS];
    let mut addr_freq = vec![0u64; GAMMA_BINS];
    let mut cursor: i64 = 0;
    for op in &ops {
        match *op {
            Op::Literal(b) => op_freq[b as usize] += 1,
            Op::CopyRef { pos, len } => {
                let (bin, _, _) = gamma_bin(len - MIN_MATCH as u64 + 1);
                op_freq[REF_LEN_BASE + bin as usize] += 1;
                let offset = zigzag(pos as i64 - cursor) + 1;
                let (abin, _, _) = gamma_bin(offset);
                addr_freq[abin as usize] += 1;
                cursor = (pos + len) as i64;
            }
            Op::CopySelf { dist, len } => {
                let (bin, _, _) = gamma_bin(len - MIN_MATCH as u64 + 1);
                op_freq[SELF_LEN_BASE + bin as usize] += 1;
                let (abin, _, _) = gamma_bin(dist);
                addr_freq[abin as usize] += 1;
            }
        }
    }
    op_freq[EOB] += 1;

    let op_lengths = build_lengths(&op_freq);
    let addr_lengths = build_lengths(&addr_freq);
    let op_code = HuffmanCode::from_lengths(&op_lengths).expect("valid built lengths");
    // Addr table may be empty if there are no copies at all.
    let addr_code = HuffmanCode::from_lengths(&addr_lengths).expect("valid built lengths");

    let dynamic = write_stream(target.len(), &ops, &op_code, &addr_code, false);
    // Fixed tables only ever win when the dynamic table header (~100-150
    // bytes) is a meaningful fraction of the stream, so skip the second
    // serialization for large op counts.
    if ops.len() <= 2_048 {
        let (fop, faddr) = fixed_codes();
        let fixed = write_stream(target.len(), &ops, fop, faddr, true);
        if fixed.len() < dynamic.len() {
            return fixed;
        }
    }
    dynamic
}

/// Decode a delta produced by [`encode`] against the same `reference`.
pub fn decode(reference: &[u8], delta: &[u8]) -> Result<Vec<u8>, DeltaError> {
    let mut r = BitReader::new(delta);
    let target_len = r.read_varint().map_err(|_| DeltaError::Corrupt)? as usize;
    if target_len > (1 << 32) {
        return Err(DeltaError::Corrupt);
    }
    let fixed_mode = r.read_bit().map_err(|_| DeltaError::Corrupt)?;
    let (op_dec, addr_dec) = if fixed_mode {
        let (fop, faddr) = fixed_codes();
        (fop.decoder(), faddr.decoder())
    } else {
        let op_lengths = super::lz::read_table(&mut r, OP_SYMS).map_err(|_| DeltaError::Corrupt)?;
        let addr_lengths =
            super::lz::read_table(&mut r, GAMMA_BINS).map_err(|_| DeltaError::Corrupt)?;
        (
            HuffmanDecoder::from_lengths(&op_lengths).map_err(|_| DeltaError::Corrupt)?,
            HuffmanDecoder::from_lengths(&addr_lengths).map_err(|_| DeltaError::Corrupt)?,
        )
    };

    // Allocate incrementally: `orig_len` is untrusted wire data, so a
    // corrupt header must not be able to demand gigabytes up front.
    let mut out = Vec::with_capacity(target_len.min(1 << 20));
    let mut cursor: i64 = 0;
    loop {
        let sym = op_dec.decode(&mut r).map_err(|_| DeltaError::Corrupt)?;
        match sym {
            0..=255 => out.push(sym as u8),
            EOB => break,
            s if s < SELF_LEN_BASE => {
                // Copy from reference.
                let bin = (s - REF_LEN_BASE) as u32;
                let extra = r.read_bits(bin).map_err(|_| DeltaError::Corrupt)?;
                let len = ((1u64 << bin) + extra + MIN_MATCH as u64 - 1) as usize;
                if out.len() + len > target_len {
                    return Err(DeltaError::Corrupt);
                }
                let abin = addr_dec.decode(&mut r).map_err(|_| DeltaError::Corrupt)? as u32;
                let aextra = r.read_bits(abin).map_err(|_| DeltaError::Corrupt)?;
                let offset = unzigzag(((1u64 << abin) + aextra) - 1);
                let pos = cursor + offset;
                if pos < 0 || (pos as usize) + len > reference.len() {
                    return Err(DeltaError::ReferenceMismatch);
                }
                out.extend_from_slice(&reference[pos as usize..pos as usize + len]);
                cursor = pos + len as i64;
            }
            s => {
                // Copy from already-produced target.
                let bin = (s - SELF_LEN_BASE) as u32;
                let extra = r.read_bits(bin).map_err(|_| DeltaError::Corrupt)?;
                let len = ((1u64 << bin) + extra + MIN_MATCH as u64 - 1) as usize;
                if out.len() + len > target_len {
                    return Err(DeltaError::Corrupt);
                }
                let abin = addr_dec.decode(&mut r).map_err(|_| DeltaError::Corrupt)? as u32;
                let aextra = r.read_bits(abin).map_err(|_| DeltaError::Corrupt)?;
                let dist = ((1u64 << abin) + aextra) as usize;
                if dist == 0 || dist > out.len() {
                    return Err(DeltaError::Corrupt);
                }
                let start = out.len() - dist;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
        if out.len() > target_len {
            return Err(DeltaError::Corrupt);
        }
    }
    if out.len() != target_len {
        return Err(DeltaError::Corrupt);
    }
    Ok(out)
}

/// Size in bytes of the delta of `target` vs `reference` — the
/// lower-bound number reported in the paper's tables.
pub fn delta_size(reference: &[u8], target: &[u8]) -> usize {
    encode(reference, target).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_similar_files() {
        let reference = b"fn main() { println!(\"hello world\"); } // comment\n".repeat(40);
        let mut target = reference.clone();
        // A small edit in the middle.
        target[500..510].copy_from_slice(b"XXXXXXXXXX");
        let d = encode(&reference, &target);
        assert_eq!(decode(&reference, &d).unwrap(), target);
        assert!(d.len() < target.len() / 10, "delta {} for target {}", d.len(), target.len());
    }

    #[test]
    fn roundtrip_unrelated_files() {
        let reference = vec![1u8; 100];
        let target: Vec<u8> = (0..1000u32).map(|i| ((i * 37) % 251) as u8).collect();
        let d = encode(&reference, &target);
        assert_eq!(decode(&reference, &d).unwrap(), target);
    }

    #[test]
    fn roundtrip_empty_cases() {
        assert_eq!(decode(b"", &encode(b"", b"")).unwrap(), b"");
        assert_eq!(decode(b"abc", &encode(b"abc", b"")).unwrap(), b"");
        assert_eq!(decode(b"", &encode(b"", b"xyz")).unwrap(), b"xyz");
    }

    #[test]
    fn identical_files_tiny_delta() {
        let reference = b"identical content that should compress to almost nothing".repeat(100);
        let d = encode(&reference, &reference);
        // The fixed-table mode keeps identity deltas to a few bytes.
        assert!(d.len() < 24, "identity delta is {} bytes", d.len());
        assert_eq!(decode(&reference, &d).unwrap(), reference);
    }

    #[test]
    fn fixed_mode_helps_small_deltas_only() {
        // Tiny delta: fixed tables beat dynamic by a wide margin.
        let reference = b"small file with a header and a body".repeat(20);
        let mut target = reference.clone();
        target.extend_from_slice(b"!tail");
        let d = encode(&reference, &target);
        assert!(d.len() < 40, "small delta is {} bytes", d.len());
        assert_eq!(decode(&reference, &d).unwrap(), target);
        // Big literal-heavy delta: dynamic tables must still engage and
        // keep the rate close to entropy (roundtrip already covered).
        let big: Vec<u8> = (0..60_000u32).map(|i| (i % 251) as u8).collect();
        let d = encode(b"", &big);
        assert_eq!(decode(b"", &d).unwrap(), big);
    }

    #[test]
    fn insertion_in_target() {
        let reference = b"AAAA BBBB CCCC DDDD EEEE FFFF GGGG HHHH".repeat(30);
        let mut target = reference.clone();
        let insert = b"<<<< inserted paragraph with fresh content >>>>";
        let at = target.len() / 2;
        target.splice(at..at, insert.iter().copied());
        let d = encode(&reference, &target);
        assert_eq!(decode(&reference, &d).unwrap(), target);
        assert!(d.len() < insert.len() + 200);
    }

    #[test]
    fn wrong_reference_detected_or_differs() {
        let reference = b"the original reference text repeated ".repeat(20);
        let target = {
            let mut t = reference.clone();
            t.extend_from_slice(b"tail");
            t
        };
        let d = encode(&reference, &target);
        let other_ref = vec![0u8; 10];
        // Either an explicit error or a wrong reconstruction; never the
        // right bytes by accident.
        if let Ok(out) = decode(&other_ref, &d) {
            assert_ne!(out, target)
        }
    }

    #[test]
    fn corrupt_delta_errors() {
        let reference = b"reference".repeat(10);
        let target = b"reference!".repeat(10);
        let mut d = encode(&reference, &target);
        d.truncate(d.len().saturating_sub(3));
        assert!(decode(&reference, &d).is_err());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 2, -2, i32::MAX as i64, i32::MIN as i64, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
