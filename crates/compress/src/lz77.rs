//! LZ77 matching machinery shared by the stream compressor, the delta
//! coder, and the vcdiff-like coder.
//!
//! Matches are found through hash chains over 4-byte keys, as in zlib and
//! zdelta: a head table maps each key to the most recent position, and a
//! prev table chains earlier positions with the same key.

/// Minimum match length worth encoding.
pub const MIN_MATCH: usize = 4;
/// Cap on match length (keeps length bins small; long repeats simply emit
/// several copies).
pub const MAX_MATCH: usize = 1 << 16;

const HASH_BITS: u32 = 16;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// Hash of the 4 bytes starting at `pos` (caller guarantees availability).
#[inline]
pub fn key4(data: &[u8], pos: usize) -> u32 {
    let k = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes"));
    (k.wrapping_mul(0x9E37_79B1)) >> (32 - HASH_BITS)
}

/// Hash-chain index over one buffer.
#[derive(Debug)]
pub struct HashChains<'a> {
    data: &'a [u8],
    head: Vec<u32>,
    prev: Vec<u32>,
    /// Positions `< indexed_to` are in the index.
    indexed_to: usize,
}

const NIL: u32 = u32::MAX;

impl<'a> HashChains<'a> {
    /// Create an empty index over `data`; call [`Self::index_to`] to fill.
    pub fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            head: vec![NIL; HASH_SIZE],
            prev: vec![NIL; data.len().saturating_sub(MIN_MATCH - 1)],
            indexed_to: 0,
        }
    }

    /// Index all positions of the buffer at once.
    pub fn new_full(data: &'a [u8]) -> Self {
        let mut s = Self::new(data);
        s.index_to(data.len());
        s
    }

    /// The underlying buffer.
    pub fn data(&self) -> &'a [u8] {
        self.data
    }

    /// Extend the index so every match start `< upto` is findable.
    pub fn index_to(&mut self, upto: usize) {
        let limit = upto.min(self.prev.len());
        while self.indexed_to < limit {
            let h = key4(self.data, self.indexed_to) as usize;
            self.prev[self.indexed_to] = self.head[h];
            self.head[h] = self.indexed_to as u32;
            self.indexed_to += 1;
        }
    }

    /// Longest match between `needle[npos..]` and this buffer, restricted
    /// to match starts `< window_end`, walking at most `max_chain` chain
    /// links. Returns `(buffer_pos, len)` of the best match with
    /// `len >= MIN_MATCH`, or `None`.
    pub fn longest_match(
        &self,
        needle: &[u8],
        npos: usize,
        window_end: usize,
        max_chain: u32,
    ) -> Option<(usize, usize)> {
        if npos + MIN_MATCH > needle.len() {
            return None;
        }
        let h = key4(needle, npos) as usize;
        let mut cand = self.head[h];
        let max_len = (needle.len() - npos).min(MAX_MATCH);
        let mut best: Option<(usize, usize)> = None;
        let mut chain = max_chain;
        while cand != NIL && chain > 0 {
            let cpos = cand as usize;
            if cpos < window_end {
                let len = common_prefix(&self.data[cpos..], &needle[npos..], max_len);
                if len >= MIN_MATCH && best.is_none_or(|(_, bl)| len > bl) {
                    best = Some((cpos, len));
                    if len == max_len {
                        break;
                    }
                }
            }
            cand = self.prev[cpos_index(cand)];
            chain -= 1;
        }
        best
    }
}

#[inline]
fn cpos_index(cand: u32) -> usize {
    cand as usize
}

/// Length of the common prefix of `a` and `b`, capped at `max`.
#[inline]
pub fn common_prefix(a: &[u8], b: &[u8], max: usize) -> usize {
    let n = a.len().min(b.len()).min(max);
    // Compare 8 bytes at a time.
    let mut i = 0;
    while i + 8 <= n {
        let x = u64::from_le_bytes(a[i..i + 8].try_into().expect("8 bytes"));
        let y = u64::from_le_bytes(b[i..i + 8].try_into().expect("8 bytes"));
        if x != y {
            return i + ((x ^ y).trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

/// A token of the LZ77 parse of a buffer against itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes starting `dist` bytes back.
    Match {
        /// Distance back from the current position (≥ 1).
        dist: u32,
        /// Match length (`MIN_MATCH..=MAX_MATCH`).
        len: u32,
    },
}

/// Greedy-with-lazy LZ77 parse of `data` against itself (zlib-style
/// one-step lazy matching), window capped at `max_dist`.
pub fn parse(data: &[u8], max_dist: usize, max_chain: u32) -> Vec<Token> {
    let mut tokens = Vec::with_capacity(data.len() / 4 + 16);
    let mut chains = HashChains::new(data);
    let mut pos = 0usize;
    let mut pending: Option<(usize, usize)> = None; // match found at pos-1
    while pos < data.len() {
        chains.index_to(pos);
        let window_start = pos.saturating_sub(max_dist);
        let found = chains
            .longest_match(data, pos, pos, max_chain)
            .filter(|&(mpos, _)| mpos >= window_start);
        match (pending.take(), found) {
            (Some((ppos, plen)), Some((mpos, mlen))) if mlen > plen => {
                // The lazy probe won: emit the previous byte as a literal
                // and hold the new match as pending.
                tokens.push(Token::Literal(data[pos - 1]));
                pending = Some((mpos, mlen));
                let _ = ppos;
                pos += 1;
            }
            (Some((ppos, plen)), _) => {
                // Previous match stands; it starts at pos-1.
                tokens.push(Token::Match { dist: ((pos - 1) - ppos) as u32, len: plen as u32 });
                pos = pos - 1 + plen;
            }
            (None, Some((mpos, mlen))) => {
                if pos + 1 < data.len() && mlen < 64 {
                    // Defer: maybe the match starting at pos+1 is longer.
                    pending = Some((mpos, mlen));
                    pos += 1;
                } else {
                    tokens.push(Token::Match { dist: (pos - mpos) as u32, len: mlen as u32 });
                    pos += mlen;
                }
            }
            (None, None) => {
                tokens.push(Token::Literal(data[pos]));
                pos += 1;
            }
        }
    }
    if let Some((ppos, plen)) = pending {
        // Pending match at the final position.
        let start = data.len() - 1;
        let plen = plen.min(data.len() - start);
        if plen >= MIN_MATCH {
            tokens.push(Token::Match { dist: (start - ppos) as u32, len: plen as u32 });
        } else {
            tokens.push(Token::Literal(data[start]));
        }
    }
    tokens
}

/// Expand a token stream back into bytes (for tests and the decompressor).
pub fn expand(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { dist, len } => {
                let start = out.len() - dist as usize;
                for i in 0..len as usize {
                    out.push(out[start + i]);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_expand_roundtrip() {
        let data = b"abcabcabcabcXabcabcabc the quick brown fox the quick brown fox".to_vec();
        let tokens = parse(&data, 1 << 15, 64);
        assert_eq!(expand(&tokens), data);
        assert!(tokens.iter().any(|t| matches!(t, Token::Match { .. })));
    }

    #[test]
    fn parse_incompressible() {
        let data: Vec<u8> = (0..=255u8).collect();
        let tokens = parse(&data, 1 << 15, 64);
        assert_eq!(expand(&tokens), data);
        assert!(tokens.iter().all(|t| matches!(t, Token::Literal(_))));
    }

    #[test]
    fn parse_empty_and_tiny() {
        assert!(parse(b"", 1 << 15, 64).is_empty());
        let tokens = parse(b"abc", 1 << 15, 64);
        assert_eq!(expand(&tokens), b"abc");
    }

    #[test]
    fn parse_overlapping_run() {
        // Classic RLE-via-LZ: dist 1, long len.
        let data = vec![b'x'; 300];
        let tokens = parse(&data, 1 << 15, 64);
        assert_eq!(expand(&tokens), data);
        assert!(tokens.len() < 10);
    }

    #[test]
    fn window_limit_respected() {
        let mut data = b"HEADER-pattern-pattern".to_vec();
        data.extend(std::iter::repeat_n(0u8, 100));
        data.extend_from_slice(b"HEADER-pattern-pattern");
        let tokens = parse(&data, 16, 64);
        assert_eq!(expand(&tokens), data);
        for t in &tokens {
            if let Token::Match { dist, .. } = t {
                assert!(*dist <= 16);
            }
        }
    }

    #[test]
    fn common_prefix_cases() {
        assert_eq!(common_prefix(b"abcdef", b"abcxef", 10), 3);
        assert_eq!(common_prefix(b"same", b"same", 10), 4);
        assert_eq!(common_prefix(b"", b"x", 10), 0);
        assert_eq!(common_prefix(b"aaaaaaaaaaaa", b"aaaaaaaaaaaa", 5), 5);
        // 8-byte fast path divergence in second word
        assert_eq!(common_prefix(b"0123456789abXdef", b"0123456789abYdef", 16), 12);
    }

    #[test]
    fn longest_match_finds_best() {
        let hay = b"xxx needle-short needle-long-version xxx";
        let chains = HashChains::new_full(hay);
        let needle = b"needle-long-ver";
        let (pos, len) = chains.longest_match(needle, 0, hay.len(), 64).unwrap();
        assert_eq!(&hay[pos..pos + len], &needle[..len]);
        assert!(len >= 12);
    }
}
