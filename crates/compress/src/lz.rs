//! Gzip-like stream compression (LZ77 + dynamic canonical Huffman).
//!
//! Used wherever the paper compresses protocol traffic "using an algorithm
//! similar to gzip": rsync's literal/token stream, msync's final delta, and
//! the whole-collection baselines in Table 6.2.
//!
//! Wire format (bit-packed, LSB-first):
//!
//! ```text
//! varint original_len
//! 1 bit  method (0 = stored, 1 = compressed)
//! stored:     original_len raw bytes (byte-aligned for simplicity? no —
//!             written as 8-bit groups in the bit stream)
//! compressed: litlen code lengths, dist code lengths, token stream, EOB
//! ```

use crate::huffman::{build_lengths, HuffmanCode, HuffmanDecoder};
use crate::lz77::{self, Token, MIN_MATCH};
use msync_hash::{BitReader, BitWriter};

/// Errors from [`decompress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LzError {
    /// Input ended early or contained an invalid code.
    Corrupt,
}

impl std::fmt::Display for LzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt compressed stream")
    }
}

impl std::error::Error for LzError {}

/// Gamma-style binning of a value `v ≥ 1`: bin = ⌊log₂ v⌋, with `bin`
/// extra bits holding `v − 2^bin`. Works for arbitrary 64-bit magnitudes,
/// unlike deflate's fixed tables, which matters for the delta coder's
/// file-absolute positions.
#[inline]
pub fn gamma_bin(v: u64) -> (u32, u32, u64) {
    debug_assert!(v >= 1);
    let bin = 63 - v.leading_zeros();
    (bin, bin, v - (1u64 << bin))
}

/// Number of gamma bins needed for values up to 2^48.
pub const GAMMA_BINS: usize = 48;

/// Symbol alphabet for the literal/length stream:
/// `0..=255` literal bytes, `256` end-of-block, `257 + bin` match-length
/// bins (length encoded as `len − MIN_MATCH + 1 ≥ 1`).
const EOB: usize = 256;
const LEN_SYM_BASE: usize = 257;
const LITLEN_SYMS: usize = LEN_SYM_BASE + GAMMA_BINS;

/// Window for self-matches. 64 KiB balances match reach against distance
/// cost for our file sizes.
const MAX_DIST: usize = 1 << 16;
const MAX_CHAIN: u32 = 128;

/// Serialize a code-length table: trailing zeros trimmed, 4 bits per
/// entry, and interior zero runs run-length coded (a 0 nibble is followed
/// by a varint holding `run − 1`). Sparse alphabets — e.g. a delta stream
/// whose literals cluster in ASCII — cost a handful of bytes instead of
/// half a nibble per unused symbol.
pub fn write_table(w: &mut BitWriter, lengths: &[u8]) {
    let n = lengths.iter().rposition(|&l| l > 0).map_or(0, |p| p + 1);
    w.write_varint(n as u64);
    let mut i = 0;
    while i < n {
        let l = lengths[i];
        w.write_bits(l as u64, 4);
        if l == 0 {
            let mut run = 1usize;
            while i + run < n && lengths[i + run] == 0 {
                run += 1;
            }
            w.write_varint((run - 1) as u64);
            i += run;
        } else {
            i += 1;
        }
    }
}

/// Deserialize a table written by [`write_table`] into `total` slots.
pub fn read_table(r: &mut BitReader<'_>, total: usize) -> Result<Vec<u8>, LzError> {
    let n = r.read_varint().map_err(|_| LzError::Corrupt)? as usize;
    if n > total {
        return Err(LzError::Corrupt);
    }
    let mut lengths = vec![0u8; total];
    let mut i = 0;
    while i < n {
        let l = r.read_bits(4).map_err(|_| LzError::Corrupt)? as u8;
        if l == 0 {
            let run = r.read_varint().map_err(|_| LzError::Corrupt)? as usize + 1;
            if i + run > n {
                return Err(LzError::Corrupt);
            }
            i += run;
        } else {
            lengths[i] = l;
            i += 1;
        }
    }
    Ok(lengths)
}

/// Compress `input`. Falls back to a stored block when compression does
/// not help (incompressible or tiny inputs).
pub fn compress(input: &[u8]) -> Vec<u8> {
    let tokens = lz77::parse(input, MAX_DIST, MAX_CHAIN);

    // Gather frequencies.
    let mut litlen_freq = vec![0u64; LITLEN_SYMS];
    let mut dist_freq = vec![0u64; GAMMA_BINS];
    for t in &tokens {
        match *t {
            Token::Literal(b) => litlen_freq[b as usize] += 1,
            Token::Match { dist, len } => {
                let (bin, _, _) = gamma_bin((len as u64) - MIN_MATCH as u64 + 1);
                litlen_freq[LEN_SYM_BASE + bin as usize] += 1;
                let (dbin, _, _) = gamma_bin(dist as u64);
                dist_freq[dbin as usize] += 1;
            }
        }
    }
    litlen_freq[EOB] += 1;

    let litlen_lengths = build_lengths(&litlen_freq);
    let dist_lengths = build_lengths(&dist_freq);
    let litlen = HuffmanCode::from_lengths(&litlen_lengths).expect("built lengths are valid");
    let dist_code = HuffmanCode::from_lengths(&dist_lengths).expect("built lengths are valid");

    let mut w = BitWriter::new();
    w.write_varint(input.len() as u64);
    w.write_bit(true); // compressed
    write_table(&mut w, &litlen_lengths);
    write_table(&mut w, &dist_lengths);
    for t in &tokens {
        match *t {
            Token::Literal(b) => litlen.encode(&mut w, b as usize),
            Token::Match { dist, len } => {
                let (bin, extra_bits, extra) = gamma_bin((len as u64) - MIN_MATCH as u64 + 1);
                litlen.encode(&mut w, LEN_SYM_BASE + bin as usize);
                w.write_bits(extra, extra_bits);
                let (dbin, dextra_bits, dextra) = gamma_bin(dist as u64);
                dist_code.encode(&mut w, dbin as usize);
                w.write_bits(dextra, dextra_bits);
            }
        }
    }
    litlen.encode(&mut w, EOB);
    let compressed = w.into_bytes();

    if compressed.len() >= input.len() + stored_overhead(input.len()) {
        let mut w = BitWriter::new();
        w.write_varint(input.len() as u64);
        w.write_bit(false); // stored
        for &b in input {
            w.write_bits(b as u64, 8);
        }
        w.into_bytes()
    } else {
        compressed
    }
}

fn stored_overhead(len: usize) -> usize {
    // varint(len) + method bit, rounded up.
    1 + (64 - (len as u64 | 1).leading_zeros() as usize) / 7
}

/// Decompress a stream produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, LzError> {
    let mut r = BitReader::new(input);
    let orig_len = r.read_varint().map_err(|_| LzError::Corrupt)? as usize;
    // Guard against absurd lengths from corrupt headers.
    if orig_len > (1 << 32) {
        return Err(LzError::Corrupt);
    }
    let compressed = r.read_bit().map_err(|_| LzError::Corrupt)?;
    // Allocate incrementally: `orig_len` is untrusted wire data, so a
    // corrupt header must not be able to demand gigabytes up front.
    let mut out = Vec::with_capacity(orig_len.min(1 << 20));
    if !compressed {
        for _ in 0..orig_len {
            out.push(r.read_bits(8).map_err(|_| LzError::Corrupt)? as u8);
        }
        return Ok(out);
    }
    let litlen_lengths = read_table(&mut r, LITLEN_SYMS)?;
    let dist_lengths = read_table(&mut r, GAMMA_BINS)?;
    let litlen = HuffmanDecoder::from_lengths(&litlen_lengths).map_err(|_| LzError::Corrupt)?;
    let dist = HuffmanDecoder::from_lengths(&dist_lengths).map_err(|_| LzError::Corrupt)?;
    loop {
        let sym = litlen.decode(&mut r).map_err(|_| LzError::Corrupt)?;
        match sym {
            0..=255 => out.push(sym as u8),
            256 => break,
            _ => {
                let bin = (sym - LEN_SYM_BASE) as u32;
                let extra = r.read_bits(bin).map_err(|_| LzError::Corrupt)?;
                let len = ((1u64 << bin) + extra) as usize + MIN_MATCH - 1;
                let dbin = dist.decode(&mut r).map_err(|_| LzError::Corrupt)? as u32;
                let dextra = r.read_bits(dbin).map_err(|_| LzError::Corrupt)?;
                let d = ((1u64 << dbin) + dextra) as usize;
                if d == 0 || d > out.len() || out.len() + len > orig_len {
                    return Err(LzError::Corrupt);
                }
                let start = out.len() - d;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
        if out.len() > orig_len {
            return Err(LzError::Corrupt);
        }
    }
    if out.len() != orig_len {
        return Err(LzError::Corrupt);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_text() {
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(50);
        let c = compress(&data);
        assert!(c.len() < data.len() / 3, "compressed {} of {}", c.len(), data.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn roundtrip_empty() {
        let c = compress(b"");
        assert_eq!(decompress(&c).unwrap(), b"");
    }

    #[test]
    fn roundtrip_single_byte() {
        let c = compress(b"z");
        assert_eq!(decompress(&c).unwrap(), b"z");
    }

    #[test]
    fn incompressible_uses_stored() {
        // Pseudo-random bytes: compressed form must not blow up.
        let mut state = 0x12345678u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect();
        let c = compress(&data);
        assert!(c.len() <= data.len() + 16);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn long_run() {
        let data = vec![7u8; 100_000];
        let c = compress(&data);
        assert!(c.len() < 200, "run-length case got {}", c.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn corrupt_input_errors() {
        let data = b"hello world hello world hello world".to_vec();
        let mut c = compress(&data);
        // Truncation.
        c.truncate(c.len() / 2);
        assert!(decompress(&c).is_err());
        // Empty input.
        assert!(decompress(&[]).is_err());
    }

    #[test]
    fn gamma_bin_values() {
        assert_eq!(gamma_bin(1), (0, 0, 0));
        assert_eq!(gamma_bin(2), (1, 1, 0));
        assert_eq!(gamma_bin(3), (1, 1, 1));
        assert_eq!(gamma_bin(4), (2, 2, 0));
        assert_eq!(gamma_bin(255), (7, 7, 127));
        assert_eq!(gamma_bin(1 << 40), (40, 40, 0));
    }
}
