//! Canonical Huffman coding.
//!
//! The entropy backend for the gzip-like stream compressor and the delta
//! coder. Codes are canonical (assigned in order of (length, symbol)), so a
//! table is fully described by its code lengths, which is what goes on the
//! wire.

use msync_hash::{BitReader, BitWriter};

/// Maximum code length. 15 matches deflate and keeps decode tables small.
pub const MAX_BITS: u32 = 15;

/// A canonical Huffman code over symbols `0..lengths.len()`.
#[derive(Debug, Clone)]
pub struct HuffmanCode {
    /// Code length per symbol (0 = symbol unused).
    lengths: Vec<u8>,
    /// Codeword per symbol, bit-reversed for LSB-first emission.
    codes: Vec<u16>,
}

/// Errors from table construction or decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HuffmanError {
    /// The code-length sequence does not describe a valid prefix code.
    InvalidLengths,
    /// The bit stream ended mid-codeword or held an unassigned codeword.
    BadStream,
}

impl std::fmt::Display for HuffmanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidLengths => write!(f, "invalid Huffman code lengths"),
            Self::BadStream => write!(f, "corrupt Huffman bit stream"),
        }
    }
}

impl std::error::Error for HuffmanError {}

/// Compute length-limited code lengths from symbol frequencies.
///
/// Standard heap-based Huffman construction; if the resulting depth
/// exceeds [`MAX_BITS`], frequencies are repeatedly flattened
/// (`f ← f/2 + 1`) and the tree rebuilt — a simple, always-terminating
/// length-limiting strategy (each flattening strictly reduces the
/// frequency ratio that drives depth).
pub fn build_lengths(freqs: &[u64]) -> Vec<u8> {
    let n = freqs.len();
    let mut adjusted: Vec<u64> = freqs.to_vec();
    loop {
        let lengths = build_lengths_once(&adjusted);
        if lengths.iter().all(|&l| (l as u32) <= MAX_BITS) {
            return lengths;
        }
        for f in adjusted.iter_mut() {
            if *f > 0 {
                *f = *f / 2 + 1;
            }
        }
        debug_assert!(n >= 2);
    }
}

fn build_lengths_once(freqs: &[u64]) -> Vec<u8> {
    let n = freqs.len();
    let mut lengths = vec![0u8; n];
    let used: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    match used.len() {
        0 => return lengths,
        1 => {
            // A single symbol still needs one bit on the wire.
            lengths[used[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Nodes: leaves first, then internal nodes appended.
    let mut weight: Vec<u64> = used.iter().map(|&i| freqs[i]).collect();
    let mut parent: Vec<usize> = vec![usize::MAX; used.len()];
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        weight.iter().enumerate().map(|(i, &w)| Reverse((w, i))).collect();
    while heap.len() > 1 {
        let Reverse((w1, i1)) = heap.pop().expect("heap non-empty");
        let Reverse((w2, i2)) = heap.pop().expect("heap has two items");
        let node = weight.len();
        weight.push(w1 + w2);
        parent.push(usize::MAX);
        parent[i1] = node;
        parent[i2] = node;
        heap.push(Reverse((w1 + w2, node)));
    }
    // Depth of each leaf = number of parent hops to the root.
    for (leaf, &sym) in used.iter().enumerate() {
        let mut depth = 0u32;
        let mut node = leaf;
        while parent[node] != usize::MAX {
            node = parent[node];
            depth += 1;
        }
        lengths[sym] = depth as u8;
    }
    lengths
}

impl HuffmanCode {
    /// Build the canonical code from per-symbol lengths.
    pub fn from_lengths(lengths: &[u8]) -> Result<Self, HuffmanError> {
        let mut bl_count = [0u32; (MAX_BITS + 1) as usize];
        for &l in lengths {
            if l as u32 > MAX_BITS {
                return Err(HuffmanError::InvalidLengths);
            }
            bl_count[l as usize] += 1;
        }
        // Kraft check (exact for complete codes; allow the degenerate
        // 1-symbol code which is incomplete by design).
        let used: u32 = lengths.iter().filter(|&&l| l > 0).count() as u32;
        if used == 0 {
            return Ok(Self { lengths: lengths.to_vec(), codes: vec![0; lengths.len()] });
        }
        let mut code = 0u32;
        let mut next_code = [0u32; (MAX_BITS + 1) as usize];
        for bits in 1..=MAX_BITS as usize {
            code = (code + bl_count[bits - 1]) << 1;
            next_code[bits] = code;
        }
        // Overfull check: codes of max length must not overflow.
        let total = (1..=MAX_BITS as usize)
            .map(|b| (bl_count[b] as u64) << (MAX_BITS as usize - b))
            .sum::<u64>();
        if total > 1u64 << MAX_BITS {
            return Err(HuffmanError::InvalidLengths);
        }
        if total < 1u64 << MAX_BITS && !(used == 1 && bl_count[1] == 1) {
            // Incomplete codes would make some bit patterns undecodable;
            // the only allowed incomplete code is the degenerate
            // single-symbol code of length 1.
            return Err(HuffmanError::InvalidLengths);
        }
        let mut codes = vec![0u16; lengths.len()];
        for (sym, &l) in lengths.iter().enumerate() {
            if l > 0 {
                let c = next_code[l as usize];
                next_code[l as usize] += 1;
                codes[sym] = reverse_bits(c as u16, l as u32);
            }
        }
        Ok(Self { lengths: lengths.to_vec(), codes })
    }

    /// Build directly from frequencies.
    pub fn from_freqs(freqs: &[u64]) -> Result<Self, HuffmanError> {
        Self::from_lengths(&build_lengths(freqs))
    }

    /// Code lengths (for wire serialization).
    pub fn lengths(&self) -> &[u8] {
        &self.lengths
    }

    /// Emit `symbol` into `w`. Panics (debug) on an unused symbol.
    #[inline]
    pub fn encode(&self, w: &mut BitWriter, symbol: usize) {
        let len = self.lengths[symbol];
        debug_assert!(len > 0, "encoding unused symbol {symbol}");
        w.write_bits(self.codes[symbol] as u64, len as u32);
    }

    /// Cost in bits of `symbol` under this code.
    #[inline]
    pub fn cost(&self, symbol: usize) -> u32 {
        self.lengths[symbol] as u32
    }

    /// Build the matching decoder.
    pub fn decoder(&self) -> HuffmanDecoder {
        HuffmanDecoder::from_lengths(&self.lengths).expect("lengths validated at construction")
    }
}

#[inline]
fn reverse_bits(v: u16, bits: u32) -> u16 {
    v.reverse_bits() >> (16 - bits)
}

/// Table-driven canonical Huffman decoder (single-level table; fine at
/// MAX_BITS = 15 for our alphabet sizes and block counts).
#[derive(Debug, Clone)]
pub struct HuffmanDecoder {
    /// For each possible `MAX_BITS`-bit lookahead (LSB-first), the decoded
    /// symbol and its length. Length 0 marks an invalid pattern.
    table: Vec<(u16, u8)>,
    max_bits: u32,
}

impl HuffmanDecoder {
    /// Build the decoder from code lengths.
    pub fn from_lengths(lengths: &[u8]) -> Result<Self, HuffmanError> {
        let code = HuffmanCode::from_lengths(lengths)?;
        let max_len = lengths.iter().copied().max().unwrap_or(0) as u32;
        let max_bits = max_len.max(1);
        let mut table = vec![(0u16, 0u8); 1usize << max_bits];
        for (sym, &len) in lengths.iter().enumerate() {
            if len == 0 {
                continue;
            }
            let base = code.codes[sym] as usize;
            let step = 1usize << len;
            let mut idx = base;
            while idx < table.len() {
                table[idx] = (sym as u16, len);
                idx += step;
            }
        }
        Ok(Self { table, max_bits })
    }

    /// Decode one symbol from `r`.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<usize, HuffmanError> {
        // Peek up to max_bits (the reader may have fewer left near the end).
        let avail = r.remaining_bits().min(self.max_bits as usize) as u32;
        if avail == 0 {
            return Err(HuffmanError::BadStream);
        }
        let mut peek = r.clone();
        let look = peek.read_bits(avail).map_err(|_| HuffmanError::BadStream)?;
        let (sym, len) = self.table[(look as usize) & (self.table.len() - 1)];
        if len == 0 || len as u32 > avail {
            return Err(HuffmanError::BadStream);
        }
        r.read_bits(len as u32).map_err(|_| HuffmanError::BadStream)?;
        Ok(sym as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_skewed_alphabet() {
        let freqs: Vec<u64> = (0..64).map(|i| if i < 4 { 1000 } else { i }).collect();
        let code = HuffmanCode::from_freqs(&freqs).unwrap();
        let dec = code.decoder();
        let symbols: Vec<usize> =
            (0..2000).map(|i| (i * 7) % 64).filter(|&s| freqs[s] > 0).collect();
        let mut w = BitWriter::new();
        for &s in &symbols {
            code.encode(&mut w, s);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &s in &symbols {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn frequent_symbols_get_short_codes() {
        let mut freqs = vec![1u64; 16];
        freqs[0] = 1_000_000;
        let lengths = build_lengths(&freqs);
        assert!(lengths[0] < lengths[5]);
    }

    #[test]
    fn single_symbol_code() {
        let mut freqs = vec![0u64; 10];
        freqs[3] = 42;
        let code = HuffmanCode::from_freqs(&freqs).unwrap();
        assert_eq!(code.lengths()[3], 1);
        let dec = code.decoder();
        let mut w = BitWriter::new();
        code.encode(&mut w, 3);
        code.encode(&mut w, 3);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(dec.decode(&mut r).unwrap(), 3);
        assert_eq!(dec.decode(&mut r).unwrap(), 3);
    }

    #[test]
    fn length_limit_enforced() {
        // Fibonacci-ish frequencies force deep trees without limiting.
        let mut freqs = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lengths = build_lengths(&freqs);
        assert!(lengths.iter().all(|&l| (l as u32) <= MAX_BITS));
        // And the result must still be a valid prefix code.
        HuffmanCode::from_lengths(&lengths).unwrap();
    }

    #[test]
    fn invalid_lengths_rejected() {
        // Three symbols of length 1 is overfull.
        assert_eq!(
            HuffmanCode::from_lengths(&[1, 1, 1]).unwrap_err(),
            HuffmanError::InvalidLengths
        );
        // Incomplete code (single length-2 symbol plus nothing else).
        assert_eq!(
            HuffmanCode::from_lengths(&[2, 0, 0]).unwrap_err(),
            HuffmanError::InvalidLengths
        );
    }

    #[test]
    fn kraft_exact_two_symbols() {
        let code = HuffmanCode::from_lengths(&[1, 1]).unwrap();
        let dec = code.decoder();
        let mut w = BitWriter::new();
        for s in [0usize, 1, 1, 0, 1] {
            code.encode(&mut w, s);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for s in [0usize, 1, 1, 0, 1] {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn empty_alphabet() {
        let code = HuffmanCode::from_freqs(&[0, 0, 0]).unwrap();
        assert!(code.lengths().iter().all(|&l| l == 0));
    }
}
