//! The burn-down baseline.
//!
//! `lint-baseline.toml` records, per `(rule, file)`, how many findings
//! existed when the gate was introduced. The gate fails only when a
//! file *exceeds* its baselined count, so pre-existing debt never blocks
//! a PR while any new violation does — and when a file gets cleaner the
//! gate reports the entry as stale so the baseline can be ratcheted
//! down with `cargo run -p xtask -- lint --update-baseline`.

use crate::rules::{Finding, Rule};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Allowed finding counts keyed by `(rule, file)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `(rule key, file) -> allowed count`.
    pub allowed: BTreeMap<(String, String), u32>,
}

/// Result of filtering findings through a baseline.
#[derive(Debug, Clone, Default)]
pub struct BaselineOutcome {
    /// Findings that exceed the baseline: these fail the gate.
    pub active: Vec<Finding>,
    /// Number of findings suppressed by baseline entries.
    pub suppressed: usize,
    /// Entries whose allowance is higher than reality: `(rule, file,
    /// allowed, actual)`. A ratchet opportunity, not a failure.
    pub stale: Vec<(String, String, u32, u32)>,
    /// Count of `#[deprecated]` attributes in non-test workspace code —
    /// informational debt reported alongside findings, never a failure.
    /// Filled by [`crate::gate`]; [`Baseline::apply`] leaves it 0.
    pub deprecation_debt: usize,
}

impl Baseline {
    /// Parse the `lint-baseline.toml` format: a sequence of
    /// `[[allow]]` tables with `rule`, `file`, and `count` keys.
    /// Unknown keys are ignored; malformed entries are skipped.
    #[must_use]
    pub fn parse(text: &str) -> Baseline {
        let mut allowed = BTreeMap::new();
        let mut rule: Option<String> = None;
        let mut file: Option<String> = None;
        let mut count: Option<u32> = None;
        let flush = |rule: &mut Option<String>,
                     file: &mut Option<String>,
                     count: &mut Option<u32>,
                     allowed: &mut BTreeMap<(String, String), u32>| {
            if let (Some(r), Some(f), Some(c)) = (rule.take(), file.take(), count.take()) {
                if Rule::from_key(&r).is_some() {
                    allowed.insert((r, f), c);
                }
            }
        };
        for raw in text.lines() {
            let line = raw.trim();
            if line == "[[allow]]" {
                flush(&mut rule, &mut file, &mut count, &mut allowed);
                continue;
            }
            if let Some((key, value)) = line.split_once('=') {
                let value = value.trim().trim_matches('"');
                match key.trim() {
                    "rule" => rule = Some(value.to_owned()),
                    "file" => file = Some(value.to_owned()),
                    "count" => count = value.parse().ok(),
                    _ => {}
                }
            }
        }
        flush(&mut rule, &mut file, &mut count, &mut allowed);
        Baseline { allowed }
    }

    /// Serialize in the format [`Baseline::parse`] reads.
    #[must_use]
    pub fn serialize(&self) -> String {
        let mut out = String::from(
            "# msync lint baseline: pre-existing violations the gate tolerates,\n\
             # tracked per (rule, file) so they can only burn DOWN.\n\
             # Regenerate after fixing violations:\n\
             #   cargo run -p xtask -- lint --update-baseline\n",
        );
        for ((rule, file), count) in &self.allowed {
            let _ =
                write!(out, "\n[[allow]]\nrule = \"{rule}\"\nfile = \"{file}\"\ncount = {count}\n");
        }
        out
    }

    /// Build a baseline that exactly covers `findings`.
    #[must_use]
    pub fn covering(findings: &[Finding]) -> Baseline {
        let mut allowed: BTreeMap<(String, String), u32> = BTreeMap::new();
        for f in findings {
            *allowed.entry((f.rule.key().to_owned(), f.file.clone())).or_insert(0) += 1;
        }
        Baseline { allowed }
    }

    /// Filter `findings` through this baseline.
    #[must_use]
    pub fn apply(&self, findings: Vec<Finding>) -> BaselineOutcome {
        let mut counts: BTreeMap<(String, String), u32> = BTreeMap::new();
        for f in &findings {
            *counts.entry((f.rule.key().to_owned(), f.file.clone())).or_insert(0) += 1;
        }
        let mut outcome = BaselineOutcome::default();
        for f in findings {
            let key = (f.rule.key().to_owned(), f.file.clone());
            let actual = counts.get(&key).copied().unwrap_or(0);
            let allowed = self.allowed.get(&key).copied().unwrap_or(0);
            if actual > allowed {
                outcome.active.push(f);
            } else {
                outcome.suppressed += 1;
            }
        }
        for ((rule, file), &allowed) in &self.allowed {
            let actual = counts.get(&(rule.clone(), file.clone())).copied().unwrap_or(0);
            if actual < allowed {
                outcome.stale.push((rule.clone(), file.clone(), allowed, actual));
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: Rule, file: &str, line: u32) -> Finding {
        Finding { rule, file: file.to_owned(), line, col: 1, end_col: 1, message: String::new() }
    }

    #[test]
    fn roundtrip() {
        let fs = vec![
            finding(Rule::PanicFreedom, "a.rs", 1),
            finding(Rule::PanicFreedom, "a.rs", 9),
            finding(Rule::LossyCast, "b.rs", 3),
        ];
        let base = Baseline::covering(&fs);
        let text = base.serialize();
        let parsed = Baseline::parse(&text);
        assert_eq!(base, parsed);
        assert_eq!(parsed.allowed[&("panic-freedom".into(), "a.rs".into())], 2);
    }

    #[test]
    fn exact_coverage_suppresses_everything() {
        let fs =
            vec![finding(Rule::PanicFreedom, "a.rs", 1), finding(Rule::PanicFreedom, "a.rs", 2)];
        let base = Baseline::covering(&fs);
        let out = base.apply(fs);
        assert!(out.active.is_empty());
        assert_eq!(out.suppressed, 2);
        assert!(out.stale.is_empty());
    }

    #[test]
    fn exceeding_count_activates_the_whole_file_group() {
        let base = Baseline::covering(&[finding(Rule::PanicFreedom, "a.rs", 1)]);
        let out = base.apply(vec![
            finding(Rule::PanicFreedom, "a.rs", 1),
            finding(Rule::PanicFreedom, "a.rs", 2),
        ]);
        assert_eq!(
            out.active.len(),
            2,
            "a regression reports every instance so the fixer sees all candidates"
        );
    }

    #[test]
    fn improvement_reports_stale_entry() {
        let base = Baseline::covering(&[
            finding(Rule::LossyCast, "w.rs", 1),
            finding(Rule::LossyCast, "w.rs", 2),
        ]);
        let out = base.apply(vec![finding(Rule::LossyCast, "w.rs", 1)]);
        assert!(out.active.is_empty());
        assert_eq!(out.stale, vec![("lossy-cast".to_owned(), "w.rs".to_owned(), 2, 1)]);
    }

    #[test]
    fn unknown_rules_in_baseline_ignored() {
        let parsed = Baseline::parse("[[allow]]\nrule = \"bogus\"\nfile = \"x.rs\"\ncount = 5\n");
        assert!(parsed.allowed.is_empty());
    }
}
