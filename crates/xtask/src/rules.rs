//! The msync-specific invariant rules.
//!
//! Each rule exists because a violation can silently desynchronize the
//! two protocol endpoints (see DESIGN.md, "The static-analysis gate"):
//!
//! * `crate-headers` — every lib crate must carry
//!   `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]`.
//! * `panic-freedom` — no `unwrap()` / `expect(` / `panic!` / `todo!` /
//!   `unimplemented!` in non-test code of the protocol-critical crates;
//!   a panic mid-round kills one endpoint while the other waits forever.
//! * `lossy-cast` — no narrowing `as` casts in the wire-format modules;
//!   a silent truncation changes encoded bytes on one side only.
//! * `determinism` — no ambient time or RNG inside protocol logic; both
//!   endpoints must compute byte-identical hashes and partitions.
//! * `hermeticity` — workspace crates may only use first-party path
//!   dependencies, so the build never needs the network.
//! * `channel-discipline` — no bare `recv()` in protocol-critical
//!   crates; an unbounded receive hangs forever when the peer dies, so
//!   every wait must go through `recv_timeout` (or a non-blocking
//!   `try_recv`). In the socket crates the same rule additionally bans
//!   blocking socket reads without a deadline: any `read`-family call
//!   must be preceded (in the same file) by a `set_read_timeout`, so a
//!   dead TCP peer surfaces as a typed timeout instead of a hung
//!   session. Filesystem reads (`fs::`-qualified) are exempt.
//! * `clock-discipline` — no `Instant::now` / `SystemTime::now` in any
//!   workspace crate except `crates/trace`: all timing flows through
//!   the `msync_trace::Clock` trait, so a traced run can be replayed
//!   byte-identically under a manual clock. (The `determinism` rule
//!   already bans the *words* in protocol-critical crates; this one
//!   closes the gap for the rest of the workspace.)
//! * `io-discipline` — the sans-IO engine modules must stay sans-IO:
//!   no `thread::spawn`, no blocking receives (`recv`, `recv_timeout`,
//!   `try_recv`), no `read`-family calls, no `sleep` inside
//!   `crates/core/src/engine/`. A machine that hides its own I/O or
//!   threads cannot be driven by the nonblocking daemon multiplexer or
//!   replayed deterministically in tests.

use crate::scanner::{blank_test_blocks, line_of, mask_source, next_nonspace, word_occurrences};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Identifier of a rule class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Required crate-level attributes in every lib crate.
    CrateHeaders,
    /// Panicking constructs in protocol-critical non-test code.
    PanicFreedom,
    /// Narrowing `as` casts in wire-format modules.
    LossyCast,
    /// Ambient time / RNG in protocol logic.
    Determinism,
    /// Non-path dependencies in workspace crates.
    Hermeticity,
    /// Unbounded blocking receives in protocol-critical code.
    ChannelDiscipline,
    /// Ambient `::now` clock reads outside the trace crate.
    ClockDiscipline,
    /// Threads or blocking I/O inside the sans-IO engine modules.
    IoDiscipline,
}

impl Rule {
    /// Stable string key used in baselines and JSON output.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            Rule::CrateHeaders => "crate-headers",
            Rule::PanicFreedom => "panic-freedom",
            Rule::LossyCast => "lossy-cast",
            Rule::Determinism => "determinism",
            Rule::Hermeticity => "hermeticity",
            Rule::ChannelDiscipline => "channel-discipline",
            Rule::ClockDiscipline => "clock-discipline",
            Rule::IoDiscipline => "io-discipline",
        }
    }

    /// Parse a baseline key back into a rule.
    #[must_use]
    pub fn from_key(key: &str) -> Option<Rule> {
        [
            Rule::CrateHeaders,
            Rule::PanicFreedom,
            Rule::LossyCast,
            Rule::Determinism,
            Rule::Hermeticity,
            Rule::ChannelDiscipline,
            Rule::ClockDiscipline,
            Rule::IoDiscipline,
        ]
        .into_iter()
        .find(|r| r.key() == key)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// One diagnostic produced by the gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// What to check and where. [`LintConfig::msync`] is the configuration
/// for this workspace; tests build ad-hoc configs over temp trees.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Crate directory names (under `crates/`) whose non-test code must
    /// be panic-free and deterministic.
    pub protocol_critical: Vec<String>,
    /// Workspace-relative files holding wire formats: no narrowing casts.
    pub wire_modules: Vec<String>,
    /// Crate directory names doing raw socket I/O: every `read`-family
    /// call must have a `set_read_timeout` earlier in the same file.
    pub socket_crates: Vec<String>,
    /// Crate directory names skipped entirely (excluded from the cargo
    /// workspace, so allowed registry deps and exempt from code rules).
    pub skip_crates: Vec<String>,
    /// Crate directory names allowed to read the ambient clock
    /// (`Instant::now` / `SystemTime::now`). Everyone else must take
    /// time from a `msync_trace::Clock`.
    pub clock_exempt: Vec<String>,
    /// Workspace-relative path prefixes of the sans-IO engine modules:
    /// no threads, no blocking I/O, no sleeps inside.
    pub engine_modules: Vec<String>,
}

impl LintConfig {
    /// The configuration for the msync workspace.
    #[must_use]
    pub fn msync() -> Self {
        LintConfig {
            protocol_critical: ["hashes", "protocol", "rsync", "recon", "core", "net"]
                .map(str::to_owned)
                .to_vec(),
            wire_modules: [
                "crates/hashes/src/bitio.rs",
                "crates/protocol/src/channel.rs",
                "crates/protocol/src/crc.rs",
                "crates/compress/src/vcdiff.rs",
                "crates/core/src/pipeline.rs",
                "crates/net/src/tcp.rs",
            ]
            .map(str::to_owned)
            .to_vec(),
            socket_crates: vec!["net".to_owned()],
            skip_crates: vec!["bench".to_owned()],
            clock_exempt: vec!["trace".to_owned()],
            engine_modules: vec!["crates/core/src/engine/".to_owned()],
        }
    }
}

/// Run every rule over the workspace rooted at `root`.
///
/// # Errors
/// Returns any I/O error encountered while reading the tree.
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let path = entry?.path();
            if path.is_dir() && path.join("Cargo.toml").is_file() {
                crate_dirs.push(path);
            }
        }
    }
    crate_dirs.sort();

    for dir in &crate_dirs {
        let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or_default().to_owned();
        if cfg.skip_crates.contains(&name) {
            continue;
        }
        check_crate_headers(root, &dir.join("src/lib.rs"), &mut findings)?;
        check_manifest(root, &dir.join("Cargo.toml"), false, &mut findings)?;
        let critical = cfg.protocol_critical.contains(&name);
        let socket = cfg.socket_crates.contains(&name);
        let ambient_clock_ok = cfg.clock_exempt.contains(&name);
        for file in rust_sources(&dir.join("src"))? {
            let rel = rel_path(root, &file);
            let text = fs::read_to_string(&file)?;
            let scannable = blank_test_blocks(&mask_source(&text));
            if critical {
                check_panic_freedom(&rel, &scannable, &mut findings);
                check_determinism(&rel, &scannable, &mut findings);
                check_channel_discipline(&rel, &scannable, &mut findings);
            }
            if socket {
                check_socket_discipline(&rel, &scannable, &mut findings);
            }
            if !ambient_clock_ok {
                check_clock_discipline(&rel, &scannable, &mut findings);
            }
            if cfg.engine_modules.iter().any(|m| rel.starts_with(m.as_str())) {
                check_io_discipline(&rel, &scannable, &mut findings);
            }
        }
    }

    // The root `msync` facade crate.
    check_crate_headers(root, &root.join("src/lib.rs"), &mut findings)?;
    check_manifest(root, &root.join("Cargo.toml"), true, &mut findings)?;
    for file in rust_sources(&root.join("src"))? {
        let rel = rel_path(root, &file);
        let text = fs::read_to_string(&file)?;
        let scannable = blank_test_blocks(&mask_source(&text));
        check_clock_discipline(&rel, &scannable, &mut findings);
    }

    for rel in &cfg.wire_modules {
        let path = root.join(rel);
        if !path.is_file() {
            findings.push(Finding {
                rule: Rule::LossyCast,
                file: rel.clone(),
                line: 1,
                message: "configured wire module does not exist (update LintConfig)".to_owned(),
            });
            continue;
        }
        let text = fs::read_to_string(&path)?;
        let scannable = blank_test_blocks(&mask_source(&text));
        check_lossy_casts(rel, &scannable, &mut findings);
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/")
}

/// Recursively collect `.rs` files under `dir`, sorted for determinism.
fn rust_sources(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if !dir.is_dir() {
        return Ok(out);
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Rule `crate-headers`.
fn check_crate_headers(root: &Path, lib_rs: &Path, findings: &mut Vec<Finding>) -> io::Result<()> {
    if !lib_rs.is_file() {
        return Ok(());
    }
    let rel = rel_path(root, lib_rs);
    let text = fs::read_to_string(lib_rs)?;
    let masked = mask_source(&text);
    let squashed: String = masked.chars().filter(|c| !c.is_whitespace()).collect();
    for (attr, why) in [
        ("#![forbid(unsafe_code)]", "unsafe code is banned workspace-wide"),
        ("#![deny(missing_docs)]", "every public item must document its protocol role"),
    ] {
        if !squashed.contains(attr) {
            findings.push(Finding {
                rule: Rule::CrateHeaders,
                file: rel.clone(),
                line: 1,
                message: format!("missing crate attribute `{attr}` ({why})"),
            });
        }
    }
    Ok(())
}

/// Rule `panic-freedom`.
fn check_panic_freedom(rel: &str, text: &str, findings: &mut Vec<Finding>) {
    for (word, follow, label) in [
        ("unwrap", b'(', "unwrap() can panic; return a Result instead"),
        ("expect", b'(', "expect() can panic; return a Result instead"),
        ("panic", b'!', "panic! aborts one endpoint mid-round"),
        ("todo", b'!', "todo! is a guaranteed panic"),
        ("unimplemented", b'!', "unimplemented! is a guaranteed panic"),
    ] {
        for pos in word_occurrences(text, word) {
            let after = next_nonspace(text, pos + word.len());
            if after.is_some_and(|(_, b)| b == follow) {
                findings.push(Finding {
                    rule: Rule::PanicFreedom,
                    file: rel.to_owned(),
                    line: line_of(text, pos),
                    message: format!("`{word}` in protocol-critical code: {label}"),
                });
            }
        }
    }
}

/// Rule `determinism`.
fn check_determinism(rel: &str, text: &str, findings: &mut Vec<Finding>) {
    for (word, label) in [
        ("Instant", "ambient clock; protocol decisions must not depend on wall time"),
        ("SystemTime", "ambient clock; protocol decisions must not depend on wall time"),
        ("thread_rng", "ambient RNG; both endpoints must compute identical bytes"),
        ("from_entropy", "ambient RNG; both endpoints must compute identical bytes"),
        ("RandomState", "randomly-seeded hasher; iteration order leaks into the protocol"),
        ("rand", "RNG crate use inside protocol logic"),
    ] {
        for pos in word_occurrences(text, word) {
            findings.push(Finding {
                rule: Rule::Determinism,
                file: rel.to_owned(),
                line: line_of(text, pos),
                message: format!("`{word}` in protocol logic: {label}"),
            });
        }
    }
}

/// Rule `channel-discipline`: a bare `recv()` blocks forever if the
/// peer died, turning a lost frame into a hung session. `recv_timeout`
/// and `try_recv` are distinct identifiers and do not fire.
fn check_channel_discipline(rel: &str, text: &str, findings: &mut Vec<Finding>) {
    for pos in word_occurrences(text, "recv") {
        let after = next_nonspace(text, pos + "recv".len());
        if after.is_some_and(|(_, b)| b == b'(') {
            findings.push(Finding {
                rule: Rule::ChannelDiscipline,
                file: rel.to_owned(),
                line: line_of(text, pos),
                message: "bare `recv()` can hang forever on a dead peer; use `recv_timeout` with a retry budget (or `try_recv`)".to_owned(),
            });
        }
    }
}

/// Rule `channel-discipline`, socket-crate extension: a blocking
/// socket read with no deadline hangs forever on a dead peer, exactly
/// like a bare `recv()`. Every `read`-family call must therefore be
/// preceded — earlier in the same file — by a `set_read_timeout`
/// call establishing the deadline. `fs::`-qualified reads are
/// filesystem I/O, not socket I/O, and are exempt.
fn check_socket_discipline(rel: &str, text: &str, findings: &mut Vec<Finding>) {
    let deadline_at: Option<usize> = word_occurrences(text, "set_read_timeout").next();
    for word in ["read", "read_exact", "read_to_end", "read_to_string"] {
        for pos in word_occurrences(text, word) {
            let after = next_nonspace(text, pos + word.len());
            if !after.is_some_and(|(_, b)| b == b'(') {
                continue;
            }
            if text[..pos].ends_with("fs::") {
                continue;
            }
            if deadline_at.is_some_and(|d| d < pos) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::ChannelDiscipline,
                file: rel.to_owned(),
                line: line_of(text, pos),
                message: format!(
                    "blocking `{word}(` with no preceding `set_read_timeout` in this file; an undeadlined socket read hangs forever on a dead peer"
                ),
            });
        }
    }
}

/// Rule `clock-discipline`: an ambient `Instant::now()` /
/// `SystemTime::now()` timestamps events with wall time nothing can
/// replay. Outside the exempt trace crate (whose `SystemClock` is the
/// one sanctioned caller), time must come from a `msync_trace::Clock`
/// handle, so golden-journal tests can substitute a manual clock.
/// Other members (`Instant::checked_add`, `SystemTime::UNIX_EPOCH`, a
/// bare `Duration`) are untimed and allowed.
fn check_clock_discipline(rel: &str, text: &str, findings: &mut Vec<Finding>) {
    for word in ["Instant", "SystemTime"] {
        for pos in word_occurrences(text, word) {
            let Some((cpos, first)) = next_nonspace(text, pos + word.len()) else {
                continue;
            };
            if first != b':' || !text[cpos..].starts_with("::") {
                continue;
            }
            let Some((npos, _)) = next_nonspace(text, cpos + 2) else {
                continue;
            };
            if text[npos..].starts_with("now") {
                findings.push(Finding {
                    rule: Rule::ClockDiscipline,
                    file: rel.to_owned(),
                    line: line_of(text, pos),
                    message: format!(
                        "`{word}::now` outside crates/trace; take time from a `msync_trace::Clock` so traced runs replay deterministically"
                    ),
                });
            }
        }
    }
}

/// Rule `io-discipline`: the engine modules are the protocol as pure
/// state machines — frames in, frames and timer requests out. A
/// `thread::spawn`, a blocking receive, a socket/stream `read`, or a
/// `sleep` inside them reintroduces exactly the ambient I/O the sans-IO
/// refactor removed, and silently breaks both the nonblocking daemon
/// multiplexer (which trusts machines never to block its poll loop) and
/// deterministic replay under a manual clock.
fn check_io_discipline(rel: &str, text: &str, findings: &mut Vec<Finding>) {
    for (word, label) in [
        ("spawn", "engine machines must not create threads; drivers own all concurrency"),
        ("recv", "engine machines must not receive; frames arrive via `on_frame`"),
        ("recv_timeout", "engine machines must not block; deadlines are timer requests"),
        ("try_recv", "engine machines must not poll channels; frames arrive via `on_frame`"),
        ("read", "engine machines must not read streams; bytes arrive via `on_frame`"),
        ("read_exact", "engine machines must not read streams; bytes arrive via `on_frame`"),
        ("read_to_end", "engine machines must not read streams; bytes arrive via `on_frame`"),
        ("read_to_string", "engine machines must not read streams; bytes arrive via `on_frame`"),
        ("sleep", "engine machines must not sleep; waits are `Output::Wait` deadlines"),
    ] {
        for pos in word_occurrences(text, word) {
            let after = next_nonspace(text, pos + word.len());
            if after.is_some_and(|(_, b)| b == b'(') {
                findings.push(Finding {
                    rule: Rule::IoDiscipline,
                    file: rel.to_owned(),
                    line: line_of(text, pos),
                    message: format!("`{word}(` inside a sans-IO engine module: {label}"),
                });
            }
        }
    }
}

const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// Rule `lossy-cast`.
fn check_lossy_casts(rel: &str, text: &str, findings: &mut Vec<Finding>) {
    let bytes = text.as_bytes();
    for pos in word_occurrences(text, "as") {
        let Some((tstart, _)) = next_nonspace(text, pos + 2) else {
            continue;
        };
        let mut tend = tstart;
        while tend < bytes.len() && (bytes[tend].is_ascii_alphanumeric() || bytes[tend] == b'_') {
            tend += 1;
        }
        let target = &text[tstart..tend];
        if NARROW_TARGETS.contains(&target) {
            findings.push(Finding {
                rule: Rule::LossyCast,
                file: rel.to_owned(),
                line: line_of(text, pos),
                message: format!(
                    "narrowing `as {target}` in a wire-format module; use `{target}::try_from` so truncation is an error, not silent corruption"
                ),
            });
        }
    }
}

/// Rule `hermeticity`: every dependency of a workspace crate must be a
/// first-party path dependency (`path = ...` or `workspace = true`
/// pointing at a path entry). Registry deps belong only in the excluded
/// bench crate.
fn check_manifest(
    root: &Path,
    manifest: &Path,
    is_root: bool,
    findings: &mut Vec<Finding>,
) -> io::Result<()> {
    if !manifest.is_file() {
        return Ok(());
    }
    let rel = rel_path(root, manifest);
    let text = fs::read_to_string(manifest)?;
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = u32::try_from(idx + 1).unwrap_or(u32::MAX);
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_owned();
            continue;
        }
        if line.is_empty() || line.starts_with('#') || !line.contains('=') {
            continue;
        }
        let dep_section =
            matches!(section.as_str(), "dependencies" | "dev-dependencies" | "build-dependencies");
        let ws_dep_section = is_root && section == "workspace.dependencies";
        if !dep_section && !ws_dep_section {
            continue;
        }
        let ok = if ws_dep_section {
            // The shared table itself must hold path deps only.
            line.contains("path =") || line.contains("path=")
        } else {
            line.contains("workspace = true")
                || line.contains("workspace=true")
                || line.contains("path =")
                || line.contains("path=")
        };
        if !ok {
            let name = line.split(['=', '.']).next().unwrap_or(line).trim();
            findings.push(Finding {
                rule: Rule::Hermeticity,
                file: rel.clone(),
                line: lineno,
                message: format!(
                    "dependency `{name}` is not a first-party path dependency; registry deps break the offline build (confine them to crates/bench)"
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_tokens_found_with_lines() {
        let text = "fn f() {\n    x.unwrap();\n    y.expect(\"m\");\n    panic!(\"no\");\n}\n";
        let scannable = blank_test_blocks(&mask_source(text));
        let mut fs = Vec::new();
        check_panic_freedom("f.rs", &scannable, &mut fs);
        let lines: Vec<u32> = fs.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![2, 3, 4]);
    }

    #[test]
    fn unwrap_or_variants_not_flagged() {
        let text =
            "let a = x.unwrap_or(0); let b = y.unwrap_or_else(id); let c = z.unwrap_or_default();";
        let mut fs = Vec::new();
        check_panic_freedom("f.rs", text, &mut fs);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn narrowing_casts_flagged_widening_allowed() {
        let text = "let a = x as u8; let b = y as u64; let c = z as usize; let d = w as f64;";
        let mut fs = Vec::new();
        check_lossy_casts("w.rs", text, &mut fs);
        let targets: Vec<&str> = fs.iter().map(|f| f.message.as_str()).collect();
        assert_eq!(fs.len(), 2, "{targets:?}");
    }

    #[test]
    fn bare_recv_flagged_bounded_receives_allowed() {
        let text = "let a = rx.recv(); let b = rx.recv_timeout(d); let c = rx.try_recv();\n\
                    fn recv_message() {} let d = self.recv ();";
        let mut fs = Vec::new();
        check_channel_discipline("c.rs", text, &mut fs);
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(fs.iter().all(|f| f.rule == Rule::ChannelDiscipline));
    }

    #[test]
    fn undeadlined_socket_reads_flagged() {
        // No set_read_timeout anywhere: every socket read fires.
        let text = "stream.read(&mut buf); stream.read_exact(&mut b); fs::read(&p);";
        let mut fs = Vec::new();
        check_socket_discipline("t.rs", text, &mut fs);
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(fs.iter().all(|f| f.rule == Rule::ChannelDiscipline));
    }

    #[test]
    fn deadlined_socket_reads_allowed() {
        let text = "s.set_read_timeout(Some(t))?;\nlet n = s.read(&mut buf)?;";
        let mut fs = Vec::new();
        check_socket_discipline("t.rs", text, &mut fs);
        assert!(fs.is_empty(), "{fs:?}");
        // ...but a read *before* the first deadline still fires.
        let early = "s.read(&mut buf)?;\ns.set_read_timeout(Some(t))?;";
        check_socket_discipline("t.rs", early, &mut fs);
        assert_eq!(fs.len(), 1, "{fs:?}");
    }

    #[test]
    fn determinism_tokens_flagged() {
        let text = "let t = Instant::now(); let r = rand::random(); let h = RandomState::new();";
        let mut fs = Vec::new();
        check_determinism("d.rs", text, &mut fs);
        assert_eq!(fs.len(), 3, "{fs:?}");
    }

    #[test]
    fn ambient_clock_reads_flagged() {
        let text = "let a = Instant::now(); let b = SystemTime::now();\n\
                    let c = std::time::Instant :: now();";
        let mut fs = Vec::new();
        check_clock_discipline("c.rs", text, &mut fs);
        assert_eq!(fs.len(), 3, "{fs:?}");
        assert!(fs.iter().all(|f| f.rule == Rule::ClockDiscipline));
    }

    #[test]
    fn untimed_clock_members_allowed() {
        let text = "let e = SystemTime::UNIX_EPOCH; let d = Duration::from_secs(1);\n\
                    let s = earlier.checked_add(d); fn now_micros() -> u64 { 0 }\n\
                    let n = clock.now_micros();";
        let mut fs = Vec::new();
        check_clock_discipline("c.rs", text, &mut fs);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn engine_io_tokens_flagged() {
        let text = "thread::spawn(|| {}); rx.recv_timeout(d); s.read(&mut b);\n\
                    thread::sleep(d); let x = self.read_pos; read_varint(&b);";
        let mut fs = Vec::new();
        check_io_discipline("crates/core/src/engine/arq.rs", text, &mut fs);
        // spawn, recv_timeout, read, sleep fire; `read_pos` (field) and
        // `read_varint` (distinct identifier) do not.
        assert_eq!(fs.len(), 4, "{fs:?}");
        assert!(fs.iter().all(|f| f.rule == Rule::IoDiscipline));
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let text = "// x.unwrap()\nlet s = \"panic!( as u8 Instant\"; /* SystemTime */\n";
        let scannable = blank_test_blocks(&mask_source(text));
        let mut fs = Vec::new();
        check_panic_freedom("f.rs", &scannable, &mut fs);
        check_determinism("f.rs", &scannable, &mut fs);
        check_lossy_casts("f.rs", &scannable, &mut fs);
        assert!(fs.is_empty(), "{fs:?}");
    }
}
