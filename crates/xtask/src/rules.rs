//! The msync-specific invariant rules.
//!
//! Each rule exists because a violation can silently desynchronize the
//! two protocol endpoints (see DESIGN.md, "The static-analysis gate"):
//!
//! * `crate-headers` — every lib crate must carry
//!   `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]`.
//! * `panic-freedom` — no `unwrap()` / `expect(` / `panic!` / `todo!` /
//!   `unimplemented!` in non-test code of the protocol-critical crates;
//!   a panic mid-round kills one endpoint while the other waits forever.
//! * `lossy-cast` — no narrowing `as` casts in the wire-format modules;
//!   a silent truncation changes encoded bytes on one side only.
//! * `determinism` — no ambient time or RNG inside protocol logic; both
//!   endpoints must compute byte-identical hashes and partitions. The
//!   token-aware scan also resolves `use ... as` aliases, so
//!   `use std::time::Instant as I; I::now()` fires too.
//! * `hermeticity` — workspace crates may only use first-party path
//!   dependencies, so the build never needs the network.
//! * `channel-discipline` — no bare `recv()` in protocol-critical
//!   crates; an unbounded receive hangs forever when the peer dies, so
//!   every wait must go through `recv_timeout` (or a non-blocking
//!   `try_recv`). In the socket crates the same rule additionally bans
//!   blocking socket reads without a deadline: any `read`-family call
//!   must be preceded (in the same file) by a `set_read_timeout`, so a
//!   dead TCP peer surfaces as a typed timeout instead of a hung
//!   session. Filesystem reads (`fs::`-qualified) are exempt.
//! * `clock-discipline` — no `Instant::now` / `SystemTime::now` in any
//!   workspace crate except `crates/trace`: all timing flows through
//!   the `msync_trace::Clock` trait, so a traced run can be replayed
//!   byte-identically under a manual clock. Alias-aware like
//!   `determinism`. (The `determinism` rule already bans the *words* in
//!   protocol-critical crates; this one closes the gap for the rest of
//!   the workspace.)
//!
//! Five cross-file passes live in [`crate::passes`] and run over the
//! same per-file models:
//!
//! * `wire-schema` — single registry per tag vocabulary (frame tags
//!   `Phase`, admin verbs `AdminCmd`), symmetric match arms.
//! * `charge-point` — `TrafficStats` charge and trace frame event are
//!   paired within every transport function.
//! * `machine-discipline` — drive loops handle every `Output` variant
//!   and the sans-IO engine modules stay effect-pure (subsumes the
//!   retired word-grep `io-discipline` rule).
//! * `apply-discipline` — no bare `fs::write(` / `File::create(` on the
//!   sync-apply paths; every materialized file goes through the atomic
//!   applier (`msync_core::AtomicApplier` / `atomic_write_file`) so a
//!   crash mid-write never leaves a torn replica.
//! * `alloc-discipline` — no `.to_vec()` / `.clone()` on frame or
//!   payload values inside the wire modules; frames move as refcounted
//!   `FrameBuf` shares, and the only sanctioned wire-path copy is the
//!   allowlisted `fault::copy_for_mutation` (an injected fault must
//!   never mutate the ARQ resend cache's pristine image in place).

use crate::model::FileModel;
use crate::passes;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Identifier of a rule class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Required crate-level attributes in every lib crate.
    CrateHeaders,
    /// Panicking constructs in protocol-critical non-test code.
    PanicFreedom,
    /// Narrowing `as` casts in wire-format modules.
    LossyCast,
    /// Ambient time / RNG in protocol logic.
    Determinism,
    /// Non-path dependencies in workspace crates.
    Hermeticity,
    /// Unbounded blocking receives in protocol-critical code.
    ChannelDiscipline,
    /// Ambient `::now` clock reads outside the trace crate.
    ClockDiscipline,
    /// One-sided frame-tag match arms or duplicate tag registries.
    WireSchema,
    /// Unpaired traffic charge / trace frame event in transport code.
    ChargePoint,
    /// Incomplete drive loops or effectful sans-IO engine modules.
    MachineDiscipline,
    /// Bare file writes on sync-apply paths outside the atomic applier.
    ApplyDiscipline,
    /// Ad-hoc frame/payload copies on the wire paths outside the
    /// sanctioned copy sites.
    AllocDiscipline,
}

impl Rule {
    /// Stable string key used in baselines and JSON output.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            Rule::CrateHeaders => "crate-headers",
            Rule::PanicFreedom => "panic-freedom",
            Rule::LossyCast => "lossy-cast",
            Rule::Determinism => "determinism",
            Rule::Hermeticity => "hermeticity",
            Rule::ChannelDiscipline => "channel-discipline",
            Rule::ClockDiscipline => "clock-discipline",
            Rule::WireSchema => "wire-schema",
            Rule::ChargePoint => "charge-point",
            Rule::MachineDiscipline => "machine-discipline",
            Rule::ApplyDiscipline => "apply-discipline",
            Rule::AllocDiscipline => "alloc-discipline",
        }
    }

    /// Parse a baseline key back into a rule.
    #[must_use]
    pub fn from_key(key: &str) -> Option<Rule> {
        [
            Rule::CrateHeaders,
            Rule::PanicFreedom,
            Rule::LossyCast,
            Rule::Determinism,
            Rule::Hermeticity,
            Rule::ChannelDiscipline,
            Rule::ClockDiscipline,
            Rule::WireSchema,
            Rule::ChargePoint,
            Rule::MachineDiscipline,
            Rule::ApplyDiscipline,
            Rule::AllocDiscipline,
        ]
        .into_iter()
        .find(|r| r.key() == key)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// One diagnostic produced by the gate, with a token-accurate span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// 1-based column one past the offending token.
    pub end_col: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// A finding anchored at code token `i` of `m`.
    #[must_use]
    pub fn at(rule: Rule, file: &str, m: &FileModel, i: usize, message: String) -> Finding {
        let t = m.tok(i);
        let width = u32::try_from(t.end - t.start).unwrap_or(1);
        Finding {
            rule,
            file: file.to_owned(),
            line: t.line,
            col: t.col,
            end_col: t.col + width,
            message,
        }
    }

    /// A finding about a whole file (missing file, missing declaration).
    #[must_use]
    pub fn file_level(rule: Rule, file: &str, message: String) -> Finding {
        Finding { rule, file: file.to_owned(), line: 1, col: 1, end_col: 1, message }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}: [{}] {}", self.file, self.line, self.col, self.rule, self.message)
    }
}

/// One wire-schema registry: an enum whose variants are the frame-tag
/// vocabulary, declared in exactly one module, with every dispatching
/// `match` in the scoped paths covering the full variant set.
#[derive(Debug, Clone)]
pub struct WireSchema {
    /// The registry enum's name (e.g. `Phase`).
    pub enum_name: String,
    /// Workspace-relative path of the one module allowed to declare it.
    pub registry: String,
    /// Workspace-relative path prefixes whose matches must be symmetric.
    pub scopes: Vec<String>,
}

/// The sans-IO machine contract checked by `machine-discipline`.
#[derive(Debug, Clone)]
pub struct MachineSpec {
    /// The machine output enum's name (e.g. `Output`).
    pub output_enum: String,
    /// Workspace-relative path of the module declaring the output enum.
    pub registry: String,
    /// The polling method every drive loop calls (e.g. `poll_output`).
    pub poll_fn: String,
}

/// What to check and where. [`LintConfig::msync`] is the configuration
/// for this workspace; tests build ad-hoc configs over temp trees.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Crate directory names (under `crates/`) whose non-test code must
    /// be panic-free and deterministic.
    pub protocol_critical: Vec<String>,
    /// Workspace-relative files holding wire formats: no narrowing casts.
    pub wire_modules: Vec<String>,
    /// Crate directory names doing raw socket I/O: every `read`-family
    /// call must have a `set_read_timeout` earlier in the same file.
    pub socket_crates: Vec<String>,
    /// Crate directory names skipped entirely (excluded from the cargo
    /// workspace, so allowed registry deps and exempt from code rules).
    pub skip_crates: Vec<String>,
    /// Crate directory names allowed to read the ambient clock
    /// (`Instant::now` / `SystemTime::now`). Everyone else must take
    /// time from a `msync_trace::Clock`.
    pub clock_exempt: Vec<String>,
    /// Workspace-relative path prefixes of the sans-IO engine modules:
    /// no threads, no blocking I/O, no sleeps inside.
    pub engine_modules: Vec<String>,
    /// Frame-tag registries checked by the `wire-schema` pass.
    pub wire_schemas: Vec<WireSchema>,
    /// Crate directory names whose functions must pair `TrafficStats`
    /// charges with trace frame events (`charge-point` pass).
    pub charge_crates: Vec<String>,
    /// The machine output contract for the `machine-discipline` pass.
    pub machine: Option<MachineSpec>,
    /// Workspace-relative path prefixes of the sync-apply code: file
    /// writes there must go through the atomic applier, never bare
    /// `fs::write` / `File::create` (`apply-discipline` pass).
    pub apply_scopes: Vec<String>,
    /// Workspace-relative path prefixes of the wire-path code: no
    /// `.to_vec()` / `.clone()` on frame or payload values there
    /// (`alloc-discipline` pass); frames move as `FrameBuf` shares.
    pub alloc_scopes: Vec<String>,
    /// `(file, function)` pairs exempt from `alloc-discipline`: the
    /// sanctioned copy sites, each of which meters its copy through
    /// `note_frame_copy`.
    pub alloc_allowed: Vec<(String, String)>,
}

impl LintConfig {
    /// The configuration for the msync workspace.
    #[must_use]
    pub fn msync() -> Self {
        LintConfig {
            protocol_critical: ["hashes", "protocol", "rsync", "recon", "core", "net"]
                .map(str::to_owned)
                .to_vec(),
            wire_modules: [
                "crates/hashes/src/bitio.rs",
                "crates/protocol/src/channel.rs",
                "crates/protocol/src/crc.rs",
                "crates/compress/src/vcdiff.rs",
                "crates/core/src/pipeline.rs",
                "crates/net/src/tcp.rs",
            ]
            .map(str::to_owned)
            .to_vec(),
            socket_crates: vec!["net".to_owned()],
            skip_crates: vec!["bench".to_owned()],
            clock_exempt: vec!["trace".to_owned()],
            engine_modules: vec!["crates/core/src/engine/".to_owned()],
            wire_schemas: vec![
                WireSchema {
                    enum_name: "Phase".to_owned(),
                    registry: "crates/protocol/src/stats.rs".to_owned(),
                    scopes: ["crates/protocol/src/", "crates/core/src/engine/", "crates/net/src/"]
                        .map(str::to_owned)
                        .to_vec(),
                },
                // The admin verb vocabulary is a wire schema too: a verb
                // the parser accepts but the executor does not dispatch
                // (or vice versa) is the same one-sided desync as a
                // missing frame-tag arm.
                WireSchema {
                    enum_name: "AdminCmd".to_owned(),
                    registry: "crates/net/src/handshake.rs".to_owned(),
                    scopes: vec!["crates/net/src/".to_owned()],
                },
            ],
            charge_crates: vec!["net".to_owned(), "protocol".to_owned()],
            machine: Some(MachineSpec {
                output_enum: "Output".to_owned(),
                registry: "crates/core/src/engine/mod.rs".to_owned(),
                poll_fn: "poll_output".to_owned(),
            }),
            apply_scopes: ["crates/cli/src/", "crates/net/src/"].map(str::to_owned).to_vec(),
            alloc_scopes: ["crates/protocol/src/", "crates/net/src/", "crates/core/src/engine/"]
                .map(str::to_owned)
                .to_vec(),
            alloc_allowed: vec![(
                "crates/protocol/src/fault.rs".to_owned(),
                "copy_for_mutation".to_owned(),
            )],
        }
    }
}

/// Everything one scan produces: the findings plus informational
/// counters reported alongside them.
#[derive(Debug)]
pub struct Analysis {
    /// All findings, sorted by `(file, line, col, rule)`.
    pub findings: Vec<Finding>,
    /// Count of `#[deprecated]` attributes in non-test workspace code.
    pub deprecation_debt: usize,
}

/// Run every rule over the workspace rooted at `root` and return the
/// findings only. See [`analyze`] for the full result.
///
/// # Errors
/// Returns any I/O error encountered while reading the tree.
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> io::Result<Vec<Finding>> {
    analyze(root, cfg).map(|a| a.findings)
}

/// Model every source file, run the per-file rules and the cross-file
/// passes, and return findings plus the deprecation-debt count.
///
/// # Errors
/// Returns any I/O error encountered while reading the tree.
pub fn analyze(root: &Path, cfg: &LintConfig) -> io::Result<Analysis> {
    let mut findings = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let path = entry?.path();
            if path.is_dir() && path.join("Cargo.toml").is_file() {
                crate_dirs.push(path);
            }
        }
    }
    crate_dirs.sort();

    // Model every source file once; rules and passes share the models.
    let mut models: BTreeMap<String, FileModel> = BTreeMap::new();
    for dir in &crate_dirs {
        let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or_default().to_owned();
        if cfg.skip_crates.contains(&name) {
            continue;
        }
        check_manifest(root, &dir.join("Cargo.toml"), false, &mut findings)?;
        for file in rust_sources(&dir.join("src"))? {
            let rel = rel_path(root, &file);
            models.insert(rel, FileModel::parse(&fs::read_to_string(&file)?));
        }
    }
    check_manifest(root, &root.join("Cargo.toml"), true, &mut findings)?;
    for file in rust_sources(&root.join("src"))? {
        let rel = rel_path(root, &file);
        models.insert(rel, FileModel::parse(&fs::read_to_string(&file)?));
    }

    for (rel, m) in &models {
        if rel.ends_with("/lib.rs") && rel.matches('/').count() <= 3 {
            check_crate_headers(rel, m, &mut findings);
        }
        let crate_name = rel.strip_prefix("crates/").and_then(|r| r.split('/').next());
        let critical = crate_name.is_some_and(|n| cfg.protocol_critical.iter().any(|c| c == n));
        let socket = crate_name.is_some_and(|n| cfg.socket_crates.iter().any(|c| c == n));
        let clock_ok = crate_name.is_some_and(|n| cfg.clock_exempt.iter().any(|c| c == n));
        if critical {
            check_panic_freedom(rel, m, &mut findings);
            check_determinism(rel, m, &mut findings);
            check_channel_discipline(rel, m, &mut findings);
        }
        if socket {
            check_socket_discipline(rel, m, &mut findings);
        }
        if !clock_ok {
            check_clock_discipline(rel, m, &mut findings);
        }
    }

    for rel in &cfg.wire_modules {
        match models.get(rel) {
            Some(m) => check_lossy_casts(rel, m, &mut findings),
            None => findings.push(Finding::file_level(
                Rule::LossyCast,
                rel,
                "configured wire module does not exist (update LintConfig)".to_owned(),
            )),
        }
    }

    passes::run(&models, cfg, &mut findings);
    let deprecation_debt = passes::deprecation_debt(&models);

    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(Analysis { findings, deprecation_debt })
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/")
}

/// Recursively collect `.rs` files under `dir`, sorted for determinism.
fn rust_sources(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if !dir.is_dir() {
        return Ok(out);
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Rule `crate-headers`.
fn check_crate_headers(rel: &str, m: &FileModel, findings: &mut Vec<Finding>) {
    for (seq, attr, why) in [
        (
            ["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"],
            "#![forbid(unsafe_code)]",
            "unsafe code is banned workspace-wide",
        ),
        (
            ["#", "!", "[", "deny", "(", "missing_docs", ")", "]"],
            "#![deny(missing_docs)]",
            "every public item must document its protocol role",
        ),
    ] {
        if m.is_empty() || m.find_seq(0, &seq).is_none() {
            findings.push(Finding::file_level(
                Rule::CrateHeaders,
                rel,
                format!("missing crate attribute `{attr}` ({why})"),
            ));
        }
    }
}

/// Rule `panic-freedom`.
fn check_panic_freedom(rel: &str, m: &FileModel, findings: &mut Vec<Finding>) {
    for (word, follow, label) in [
        ("unwrap", '(', "unwrap() can panic; return a Result instead"),
        ("expect", '(', "expect() can panic; return a Result instead"),
        ("panic", '!', "panic! aborts one endpoint mid-round"),
        ("todo", '!', "todo! is a guaranteed panic"),
        ("unimplemented", '!', "unimplemented! is a guaranteed panic"),
    ] {
        for i in m.idents(word) {
            if i + 1 < m.len() && m.is_punct(i + 1, follow) {
                findings.push(Finding::at(
                    Rule::PanicFreedom,
                    rel,
                    m,
                    i,
                    format!("`{word}` in protocol-critical code: {label}"),
                ));
            }
        }
    }
}

const BANNED_NONDETERMINISM: &[(&str, &str)] = &[
    ("Instant", "ambient clock; protocol decisions must not depend on wall time"),
    ("SystemTime", "ambient clock; protocol decisions must not depend on wall time"),
    ("thread_rng", "ambient RNG; both endpoints must compute identical bytes"),
    ("from_entropy", "ambient RNG; both endpoints must compute identical bytes"),
    ("RandomState", "randomly-seeded hasher; iteration order leaks into the protocol"),
    ("rand", "RNG crate use inside protocol logic"),
];

/// Rule `determinism`: the banned words directly, plus any local name a
/// `use` declaration resolves to a banned path segment — so
/// `use std::time::Instant as I` does not launder the ambient clock.
fn check_determinism(rel: &str, m: &FileModel, findings: &mut Vec<Finding>) {
    for (word, label) in BANNED_NONDETERMINISM {
        for i in m.idents(word) {
            findings.push(Finding::at(
                Rule::Determinism,
                rel,
                m,
                i,
                format!("`{word}` in protocol logic: {label}"),
            ));
        }
    }
    for (name, path) in &m.imports {
        if BANNED_NONDETERMINISM.iter().any(|(w, _)| w == name) {
            continue; // direct scan above already covers this name
        }
        let Some((word, label)) =
            BANNED_NONDETERMINISM.iter().find(|(w, _)| path.iter().any(|seg| seg == w))
        else {
            continue;
        };
        for i in m.idents(name) {
            if !m.is_use(i) {
                findings.push(Finding::at(
                    Rule::Determinism,
                    rel,
                    m,
                    i,
                    format!(
                        "`{name}` resolves to `{}` (`{word}` in protocol logic: {label})",
                        path.join("::")
                    ),
                ));
            }
        }
    }
}

/// Rule `channel-discipline`: a bare `recv()` blocks forever if the
/// peer died, turning a lost frame into a hung session. `recv_timeout`
/// and `try_recv` are distinct identifiers and do not fire.
fn check_channel_discipline(rel: &str, m: &FileModel, findings: &mut Vec<Finding>) {
    for i in m.idents("recv") {
        if i + 1 < m.len() && m.is_punct(i + 1, '(') {
            findings.push(Finding::at(
                Rule::ChannelDiscipline,
                rel,
                m,
                i,
                "bare `recv()` can hang forever on a dead peer; use `recv_timeout` with a retry budget (or `try_recv`)".to_owned(),
            ));
        }
    }
}

/// Rule `channel-discipline`, socket-crate extension: a blocking
/// socket read with no deadline hangs forever on a dead peer, exactly
/// like a bare `recv()`. Every `read`-family call must therefore be
/// preceded — earlier in the same file — by a `set_read_timeout`
/// call establishing the deadline. `fs::`-qualified reads are
/// filesystem I/O, not socket I/O, and are exempt.
fn check_socket_discipline(rel: &str, m: &FileModel, findings: &mut Vec<Finding>) {
    let deadline: Option<usize> = m.idents("set_read_timeout").next();
    for word in ["read", "read_exact", "read_to_end", "read_to_string"] {
        for i in m.idents(word) {
            if i + 1 >= m.len() || !m.is_punct(i + 1, '(') {
                continue;
            }
            if i >= 3 && m.is_path_sep(i - 2) && m.is_ident(i - 3, "fs") {
                continue;
            }
            if deadline.is_some_and(|d| d < i) {
                continue;
            }
            findings.push(Finding::at(
                Rule::ChannelDiscipline,
                rel,
                m,
                i,
                format!(
                    "blocking `{word}(` with no preceding `set_read_timeout` in this file; an undeadlined socket read hangs forever on a dead peer"
                ),
            ));
        }
    }
}

/// Rule `clock-discipline`: an ambient `Instant::now()` /
/// `SystemTime::now()` timestamps events with wall time nothing can
/// replay. Outside the exempt trace crate (whose `SystemClock` is the
/// one sanctioned caller), time must come from a `msync_trace::Clock`
/// handle, so golden-journal tests can substitute a manual clock.
/// Other members (`Instant::checked_add`, `SystemTime::UNIX_EPOCH`, a
/// bare `Duration`) are untimed and allowed. Aliased imports
/// (`use std::time::Instant as I; I::now()`) fire too.
fn check_clock_discipline(rel: &str, m: &FileModel, findings: &mut Vec<Finding>) {
    let clock_types = ["Instant", "SystemTime"];
    let fire = |m: &FileModel, i: usize| -> bool {
        i + 3 < m.len() && m.is_path_sep(i + 1) && m.is_ident(i + 3, "now")
    };
    for word in clock_types {
        for i in m.idents(word) {
            if fire(m, i) {
                findings.push(Finding::at(
                    Rule::ClockDiscipline,
                    rel,
                    m,
                    i,
                    format!(
                        "`{word}::now` outside crates/trace; take time from a `msync_trace::Clock` so traced runs replay deterministically"
                    ),
                ));
            }
        }
    }
    for (name, path) in &m.imports {
        if clock_types.contains(&name.as_str()) {
            continue; // direct scan above already covers this name
        }
        let Some(word) = path.last().map(String::as_str).filter(|last| clock_types.contains(last))
        else {
            continue;
        };
        for i in m.idents(name) {
            if !m.is_use(i) && fire(m, i) {
                findings.push(Finding::at(
                    Rule::ClockDiscipline,
                    rel,
                    m,
                    i,
                    format!(
                        "`{name}::now` (alias of `{word}`) outside crates/trace; take time from a `msync_trace::Clock` so traced runs replay deterministically"
                    ),
                ));
            }
        }
    }
}

const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// Rule `lossy-cast`.
fn check_lossy_casts(rel: &str, m: &FileModel, findings: &mut Vec<Finding>) {
    for i in m.idents("as") {
        if m.is_use(i) || i + 1 >= m.len() {
            continue;
        }
        let target = m.text(i + 1);
        if NARROW_TARGETS.contains(&target) {
            findings.push(Finding::at(
                Rule::LossyCast,
                rel,
                m,
                i,
                format!(
                    "narrowing `as {target}` in a wire-format module; use `{target}::try_from` so truncation is an error, not silent corruption"
                ),
            ));
        }
    }
}

/// Rule `hermeticity`: every dependency of a workspace crate must be a
/// first-party path dependency (`path = ...` or `workspace = true`
/// pointing at a path entry). Registry deps belong only in the excluded
/// bench crate.
fn check_manifest(
    root: &Path,
    manifest: &Path,
    is_root: bool,
    findings: &mut Vec<Finding>,
) -> io::Result<()> {
    if !manifest.is_file() {
        return Ok(());
    }
    let rel = rel_path(root, manifest);
    let text = fs::read_to_string(manifest)?;
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = u32::try_from(idx + 1).unwrap_or(u32::MAX);
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_owned();
            continue;
        }
        if line.is_empty() || line.starts_with('#') || !line.contains('=') {
            continue;
        }
        let dep_section =
            matches!(section.as_str(), "dependencies" | "dev-dependencies" | "build-dependencies");
        let ws_dep_section = is_root && section == "workspace.dependencies";
        if !dep_section && !ws_dep_section {
            continue;
        }
        let ok = if ws_dep_section {
            // The shared table itself must hold path deps only.
            line.contains("path =") || line.contains("path=")
        } else {
            line.contains("workspace = true")
                || line.contains("workspace=true")
                || line.contains("path =")
                || line.contains("path=")
        };
        if !ok {
            let name = line.split(['=', '.']).next().unwrap_or(line).trim();
            findings.push(Finding {
                rule: Rule::Hermeticity,
                file: rel.clone(),
                line: lineno,
                col: 1,
                end_col: 1,
                message: format!(
                    "dependency `{name}` is not a first-party path dependency; registry deps break the offline build (confine them to crates/bench)"
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::parse(src)
    }

    #[test]
    fn panic_tokens_found_with_lines_and_cols() {
        let m = model("fn f() {\n    x.unwrap();\n    y.expect(\"m\");\n    panic!(\"no\");\n}\n");
        let mut fs = Vec::new();
        check_panic_freedom("f.rs", &m, &mut fs);
        let lines: Vec<u32> = fs.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![2, 3, 4]);
        assert_eq!(fs[0].col, 7, "column points at the `unwrap` token");
        assert_eq!(fs[0].end_col, 13);
    }

    #[test]
    fn unwrap_or_variants_not_flagged() {
        let m = model(
            "fn f() { let a = x.unwrap_or(0); let b = y.unwrap_or_else(id); let c = z.unwrap_or_default(); }",
        );
        let mut fs = Vec::new();
        check_panic_freedom("f.rs", &m, &mut fs);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn multi_line_calls_no_longer_blind() {
        // The old masked-grep scan required `(` on the same lexical run;
        // token streams see through arbitrary whitespace and comments.
        let m = model("fn f() { x.unwrap\n        /* why */ ();\n}");
        let mut fs = Vec::new();
        check_panic_freedom("f.rs", &m, &mut fs);
        assert_eq!(fs.len(), 1, "{fs:?}");
    }

    #[test]
    fn narrowing_casts_flagged_widening_allowed() {
        let m = model(
            "fn f() { let a = x as u8; let b = y as u64; let c = z as usize; let d = w as f64; }",
        );
        let mut fs = Vec::new();
        check_lossy_casts("w.rs", &m, &mut fs);
        assert_eq!(fs.len(), 2, "{fs:?}");
    }

    #[test]
    fn bare_recv_flagged_bounded_receives_allowed() {
        let m = model(
            "fn f() { let a = rx.recv(); let b = rx.recv_timeout(d); let c = rx.try_recv(); }\n\
             fn recv_message() {}\nfn g() { let d = self.recv (); }",
        );
        let mut fs = Vec::new();
        check_channel_discipline("c.rs", &m, &mut fs);
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(fs.iter().all(|f| f.rule == Rule::ChannelDiscipline));
    }

    #[test]
    fn undeadlined_socket_reads_flagged() {
        // No set_read_timeout anywhere: every socket read fires, but
        // fs-qualified reads are exempt.
        let m = model(
            "fn f() { stream.read(&mut buf); stream.read_exact(&mut b); fs::read(&p); std::fs::read(&p); }",
        );
        let mut fs = Vec::new();
        check_socket_discipline("t.rs", &m, &mut fs);
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(fs.iter().all(|f| f.rule == Rule::ChannelDiscipline));
    }

    #[test]
    fn deadlined_socket_reads_allowed() {
        let m = model("fn f() { s.set_read_timeout(Some(t))?;\nlet n = s.read(&mut buf)?; }");
        let mut fs = Vec::new();
        check_socket_discipline("t.rs", &m, &mut fs);
        assert!(fs.is_empty(), "{fs:?}");
        // ...but a read *before* the first deadline still fires.
        let early = model("fn f() { s.read(&mut buf)?;\ns.set_read_timeout(Some(t))?; }");
        check_socket_discipline("t.rs", &early, &mut fs);
        assert_eq!(fs.len(), 1, "{fs:?}");
    }

    #[test]
    fn determinism_tokens_flagged() {
        let m = model("fn f() { let t = Instant::now(); let r = rand::random(); let h = RandomState::new(); }");
        let mut fs = Vec::new();
        check_determinism("d.rs", &m, &mut fs);
        assert_eq!(fs.len(), 3, "{fs:?}");
    }

    #[test]
    fn aliased_imports_no_longer_blind() {
        // `use std::time::Instant as I` fires once at the use site
        // (direct word) and at each later `I` usage (via resolution).
        let m = model("use std::time::Instant as I;\nfn f() -> I { I::now() }\n");
        let mut det = Vec::new();
        check_determinism("d.rs", &m, &mut det);
        assert_eq!(det.len(), 3, "use-site + two alias usages: {det:?}");
        assert!(det.iter().any(|f| f.message.contains("resolves to `std::time::Instant`")));
        let mut clock = Vec::new();
        check_clock_discipline("d.rs", &m, &mut clock);
        assert_eq!(clock.len(), 1, "only `I::now` is a clock read: {clock:?}");
        assert!(clock[0].message.contains("alias of `Instant`"));
    }

    #[test]
    fn ambient_clock_reads_flagged() {
        let m = model(
            "fn f() { let a = Instant::now(); let b = SystemTime::now();\n\
             let c = std::time::Instant :: now(); }",
        );
        let mut fs = Vec::new();
        check_clock_discipline("c.rs", &m, &mut fs);
        assert_eq!(fs.len(), 3, "{fs:?}");
        assert!(fs.iter().all(|f| f.rule == Rule::ClockDiscipline));
    }

    #[test]
    fn untimed_clock_members_allowed() {
        let m = model(
            "fn f() { let e = SystemTime::UNIX_EPOCH; let d = Duration::from_secs(1);\n\
             let s = earlier.checked_add(d); let n = clock.now_micros(); }\nfn now_micros() -> u64 { 0 }",
        );
        let mut fs = Vec::new();
        check_clock_discipline("c.rs", &m, &mut fs);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn strings_comments_and_tests_never_fire() {
        let m = model(
            "// x.unwrap()\nfn f() { let s = \"panic!( as u8 Instant\"; } /* SystemTime */\n\
             #[cfg(test)]\nmod tests {\n    fn t() { None::<u32>.unwrap(); panic!(\"boom\"); }\n}\n",
        );
        let mut fs = Vec::new();
        check_panic_freedom("f.rs", &m, &mut fs);
        check_determinism("f.rs", &m, &mut fs);
        check_lossy_casts("f.rs", &m, &mut fs);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn crate_headers_found_by_token_sequence() {
        let ok = model("#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n//! Docs.\n");
        let mut fs = Vec::new();
        check_crate_headers("l.rs", &ok, &mut fs);
        assert!(fs.is_empty(), "{fs:?}");
        let bad = model("//! Docs but no headers.\npub fn f() {}\n");
        check_crate_headers("l.rs", &bad, &mut fs);
        assert_eq!(fs.len(), 2, "{fs:?}");
    }
}
