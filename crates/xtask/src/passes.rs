//! Cross-file protocol-semantic passes.
//!
//! The per-file rules in [`crate::rules`] catch local defects; the
//! passes here check invariants that span files — the properties whose
//! violation desynchronizes the two protocol endpoints at runtime:
//!
//! * **wire-schema** — every frame tag / message discriminant is
//!   declared in exactly one registry module, and every encode-side or
//!   decode-side `match` over the registry enum covers the identical
//!   variant set. A one-sided arm is a lint error here instead of a
//!   runtime desync on the slow link.
//! * **charge-point** — within any function in the transport crates, a
//!   `TrafficStats` charge and the paired `FrameSend`/`FrameRecv` trace
//!   event appear together or not at all, so a trace journal's
//!   per-(direction, phase) byte sums equal the run's `TrafficStats`
//!   by construction (the journal==stats invariant as a compile gate).
//!   The same pass guards the handshake reject path: a function that
//!   turns a `HelloOutcome::Reject` into wire bytes (it mentions the
//!   variant *and* sends) must record `EventKind::Handshake` in the
//!   same function, so refused hellos — capacity, bad config,
//!   unknown collection — never vanish from the metrics. Pure
//!   verdict-builders like `eval_hello` (no send) are exempt.
//! * **machine-discipline** — every drive loop that polls a sans-IO
//!   machine handles all four `Output` variants, and the engine modules
//!   stay effect-pure (no threads, blocking receives, stream reads, or
//!   sleeps). Replaces the word-grep `io-discipline` rule.
//! * **apply-discipline** — the sync-apply paths (the code that
//!   materializes transferred file contents on disk) contain no bare
//!   `fs::write(` or `File::create(`; every write goes through the
//!   atomic applier so a crash mid-write leaves a temp file for the
//!   orphan sweep, never a torn replica.
//! * **alloc-discipline** — the wire modules (protocol, net, the
//!   sans-IO engine) never call `.to_vec()` / `.clone()` on a frame or
//!   payload value. Frames are refcounted `FrameBuf`s: retransmission,
//!   queueing, and fan-out all move shares of one allocation, so an
//!   ad-hoc copy silently reintroduces the per-frame allocation the
//!   zero-copy refactor removed — and dodges the `note_frame_copy`
//!   meter the soak bench gates on. The allowlisted sites (the fault
//!   injector's `copy_for_mutation`) are the only sanctioned copies.
//!
//! Classification notes for wire-schema: a `match` is *about* the
//! registry enum when variants appear in its arm **patterns**
//! (encode-side: `Phase::Setup => 0`), or when two or more distinct
//! variants appear in its arm **bodies** (decode-side:
//! `0 => Phase::Setup, 1 => Phase::Map`). A match that merely mentions
//! a single variant in one body (`HelloOutcome::Accept { .. } =>
//! t.send(&reply, Phase::Setup)`) is using the enum as a value, not
//! dispatching over the wire vocabulary, and is exempt.

use crate::model::FileModel;
use crate::rules::{Finding, LintConfig, Rule};
use std::collections::{BTreeMap, BTreeSet};

/// Run all cross-file passes over the modeled workspace.
pub fn run(models: &BTreeMap<String, FileModel>, cfg: &LintConfig, findings: &mut Vec<Finding>) {
    for schema in &cfg.wire_schemas {
        wire_schema(models, schema, findings);
    }
    charge_point(models, cfg, findings);
    machine_discipline(models, cfg, findings);
    apply_discipline(models, cfg, findings);
    alloc_discipline(models, cfg, findings);
}

/// Count `#[deprecated]` attributes in non-test code across the
/// modeled workspace: the deprecation debt reported alongside findings.
#[must_use]
pub fn deprecation_debt(models: &BTreeMap<String, FileModel>) -> usize {
    let mut debt = 0usize;
    for m in models.values() {
        let mut from = 0usize;
        while let Some(i) = m.find_seq(from, &["#", "[", "deprecated"]) {
            debt += 1;
            from = i + 3;
        }
    }
    debt
}

/// Parse the variant names of `enum <name> { ... }` in `m`, if declared.
fn enum_variants(m: &FileModel, name: &str) -> Option<(usize, Vec<String>)> {
    let decl = m.find_seq(0, &["enum", name])?;
    let open = (decl + 2..m.len()).find(|&j| m.is_punct(j, '{'))?;
    let close = m.matching_brace(open)?;
    let mut variants = Vec::new();
    let mut expecting = true;
    let mut i = open + 1;
    while i < close {
        if m.is_punct(i, '#') {
            // Attribute on a variant: skip the bracketed group.
            let mut j = i + 1;
            let mut depth = 0usize;
            while j <= close {
                if m.is_punct(j, '[') {
                    depth += 1;
                } else if m.is_punct(j, ']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        if expecting && m.tok(i).kind == crate::tokens::TokenKind::Ident {
            variants.push(m.text(i).to_owned());
            expecting = false;
            i += 1;
            continue;
        }
        // Skip payloads / discriminants to the variant separator.
        if m.is_punct(i, '(') || m.is_punct(i, '{') || m.is_punct(i, '[') {
            let closer = match m.text(i) {
                "(" => ")",
                "{" => "}",
                _ => "]",
            };
            let mut depth = 0usize;
            let mut j = i;
            while j <= close {
                let t = m.text(j);
                if t == m.text(i) {
                    depth += 1;
                } else if t == closer {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        if m.is_punct(i, ',') {
            expecting = true;
        }
        i += 1;
    }
    Some((decl, variants))
}

/// Whether `rel` falls under any of the configured scope prefixes.
fn in_scopes(rel: &str, scopes: &[String]) -> bool {
    scopes.iter().any(|s| rel.starts_with(s.as_str()))
}

/// Rule `wire-schema` for one registry enum.
fn wire_schema(
    models: &BTreeMap<String, FileModel>,
    schema: &crate::rules::WireSchema,
    findings: &mut Vec<Finding>,
) {
    let Some(registry) = models.get(&schema.registry) else {
        findings.push(Finding::file_level(
            Rule::WireSchema,
            &schema.registry,
            format!(
                "configured wire-schema registry for `{}` does not exist (update LintConfig)",
                schema.enum_name
            ),
        ));
        return;
    };
    let Some((_, variants)) = enum_variants(registry, &schema.enum_name) else {
        findings.push(Finding::file_level(
            Rule::WireSchema,
            &schema.registry,
            format!(
                "registry module must declare `enum {}` (the single frame-tag vocabulary)",
                schema.enum_name
            ),
        ));
        return;
    };
    let canonical: BTreeSet<&str> = variants.iter().map(String::as_str).collect();

    for (rel, m) in models {
        let scoped = rel == &schema.registry || in_scopes(rel, &schema.scopes);
        if !scoped || m.is_empty() {
            continue;
        }
        // Exactly one declaration: a second `enum Phase` forks the
        // vocabulary even if its variants currently agree.
        if rel != &schema.registry {
            if let Some((decl, _)) = enum_variants(m, &schema.enum_name) {
                findings.push(Finding::at(
                    Rule::WireSchema,
                    rel,
                    m,
                    decl,
                    format!(
                        "`enum {}` declared outside the registry module {}; frame tags must have exactly one declaration",
                        schema.enum_name, schema.registry
                    ),
                ));
            }
        }
        for mi in m.matches_in((0, m.len() - 1)) {
            let mut in_patterns: BTreeSet<&str> = BTreeSet::new();
            let mut in_bodies: BTreeSet<&str> = BTreeSet::new();
            for &((ps, pe), (bs, be)) in &mi.arms {
                for (_, v) in m.variant_mentions(&schema.enum_name, (ps, pe)) {
                    if let Some(known) = canonical.iter().find(|k| **k == v) {
                        in_patterns.insert(known);
                    }
                }
                for (_, v) in m.variant_mentions(&schema.enum_name, (bs, be)) {
                    if let Some(known) = canonical.iter().find(|k| **k == v) {
                        in_bodies.insert(known);
                    }
                }
            }
            // Encode-side (variants in patterns) or decode-side (a
            // table of >= 2 variants in bodies) matches must cover the
            // whole registry; incidental single-variant value uses are
            // exempt (see module docs).
            let covered: &BTreeSet<&str> =
                if in_patterns.is_empty() { &in_bodies } else { &in_patterns };
            let dispatching = !in_patterns.is_empty() || in_bodies.len() >= 2;
            if dispatching && covered != &canonical {
                let missing: Vec<&str> = canonical.difference(covered).copied().collect();
                findings.push(Finding::at(
                    Rule::WireSchema,
                    rel,
                    m,
                    mi.kw_idx,
                    format!(
                        "match over frame-tag registry `{}` misses {{{}}}; a one-sided arm desynchronizes encode/decode between the endpoints",
                        schema.enum_name,
                        missing.join(", ")
                    ),
                ));
            }
        }
    }
}

/// Rule `charge-point`: see module docs.
fn charge_point(
    models: &BTreeMap<String, FileModel>,
    cfg: &LintConfig,
    findings: &mut Vec<Finding>,
) {
    let scopes: Vec<String> =
        cfg.charge_crates.iter().map(|c| format!("crates/{c}/src/")).collect();
    for (rel, m) in models {
        if !in_scopes(rel, &scopes) {
            continue;
        }
        for f in &m.fns {
            let Some(body) = f.body else { continue };
            if m.is_test(f.name_idx) {
                continue;
            }
            let mut charges: Vec<usize> = Vec::new();
            let mut frame_events: Vec<usize> = Vec::new();
            for i in body.0..=body.1 {
                if !(m.is_ident(i, "record") && i > 0 && m.is_punct(i - 1, '.')) {
                    continue;
                }
                if i + 1 > body.1 || !m.is_punct(i + 1, '(') {
                    continue;
                }
                let close = matching_paren(m, i + 1, body.1);
                let args = (i + 2, close.saturating_sub(1).max(i + 1));
                let event_kinds = m.variant_mentions("EventKind", args);
                if event_kinds.is_empty() {
                    // TrafficStats charge — unless the receiver is a
                    // local snapshot (`let mut out = self.stats...`),
                    // which aggregates without touching the wire.
                    if !receiver_is_local(m, body, i) {
                        charges.push(i);
                    }
                } else if event_kinds.iter().any(|(_, v)| v == "FrameSend" || v == "FrameRecv") {
                    frame_events.push(i);
                }
            }
            if !charges.is_empty() && frame_events.is_empty() {
                findings.push(Finding::at(
                    Rule::ChargePoint,
                    rel,
                    m,
                    charges[0],
                    format!(
                        "`{}` charges TrafficStats without emitting the paired FrameSend/FrameRecv trace event in the same function; the journal no longer equals the stats",
                        f.name
                    ),
                ));
            }
            if charges.is_empty() && !frame_events.is_empty() {
                findings.push(Finding::at(
                    Rule::ChargePoint,
                    rel,
                    m,
                    frame_events[0],
                    format!(
                        "`{}` emits a FrameSend/FrameRecv trace event without charging TrafficStats in the same function; the stats no longer equal the journal",
                        f.name
                    ),
                ));
            }
            // Handshake-reject metering: a function that sends a
            // rejection must also meter it. "Sends" is any `send(` /
            // `queue_send(` call in the body; functions that merely
            // build or pattern-match the verdict without touching the
            // wire are exempt.
            let rejects = m.variant_mentions("HelloOutcome", body);
            if let Some(&(reject_idx, _)) = rejects.iter().find(|(_, v)| v == "Reject") {
                let sends = (body.0..=body.1).any(|i| {
                    (m.is_ident(i, "send") || m.is_ident(i, "queue_send"))
                        && i + 1 <= body.1
                        && m.is_punct(i + 1, '(')
                });
                let metered =
                    m.variant_mentions("EventKind", body).iter().any(|(_, v)| v == "Handshake");
                if sends && !metered {
                    findings.push(Finding::at(
                        Rule::ChargePoint,
                        rel,
                        m,
                        reject_idx,
                        format!(
                            "`{}` sends a handshake rejection (`HelloOutcome::Reject`) without recording EventKind::Handshake in the same function; refused hellos vanish from the metrics",
                            f.name
                        ),
                    ));
                }
            }
        }
    }
}

/// Close index of the paren opened at `open` (bounded by `hi`).
fn matching_paren(m: &FileModel, open: usize, hi: usize) -> usize {
    let mut depth = 0i32;
    for j in open..=hi {
        if m.is_punct(j, '(') {
            depth += 1;
        } else if m.is_punct(j, ')') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    hi
}

/// Whether the receiver of `<recv> . record (` at code index `record_i`
/// is a binding introduced by `let` in the same body.
fn receiver_is_local(m: &FileModel, body: (usize, usize), record_i: usize) -> bool {
    if record_i < 2 {
        return false;
    }
    let recv = record_i - 2;
    if m.tok(recv).kind != crate::tokens::TokenKind::Ident {
        return false;
    }
    // `self.stats.record(...)`: the receiver chain starts at a field
    // access, not a local.
    if recv >= 2 && m.is_punct(recv - 1, '.') {
        return false;
    }
    let name = m.text(recv);
    (body.0..record_i).any(|j| {
        m.is_ident(j, "let")
            && ((m.is_ident(j + 1, "mut") && m.is_ident(j + 2, name)) || m.is_ident(j + 1, name))
    })
}

/// Rule `machine-discipline`: drive-loop completeness plus engine
/// effect-purity.
fn machine_discipline(
    models: &BTreeMap<String, FileModel>,
    cfg: &LintConfig,
    findings: &mut Vec<Finding>,
) {
    // Variant vocabulary from the Output registry declaration.
    let mut output_variants: Option<Vec<String>> = None;
    if let Some(spec) = &cfg.machine {
        match models.get(&spec.registry).and_then(|m| enum_variants(m, &spec.output_enum)) {
            Some((_, variants)) => output_variants = Some(variants),
            None => findings.push(Finding::file_level(
                Rule::MachineDiscipline,
                &spec.registry,
                format!(
                    "configured machine registry must declare `enum {}` (update LintConfig)",
                    spec.output_enum
                ),
            )),
        }
    }

    for (rel, m) in models {
        // (a) Drive loops: any function calling `.poll_output(` must
        // handle every Output variant; a swallowed `Wait` spins, a
        // swallowed `Attribute` silently drops inbound byte accounting.
        if let (Some(spec), Some(variants)) = (&cfg.machine, &output_variants) {
            for f in &m.fns {
                let Some(body) = f.body else { continue };
                if m.is_test(f.name_idx) || f.name == spec.poll_fn {
                    continue;
                }
                let calls_poll = (body.0..body.1).any(|i| {
                    m.is_ident(i, &spec.poll_fn)
                        && i > 0
                        && m.is_punct(i - 1, '.')
                        && i + 1 <= body.1
                        && m.is_punct(i + 1, '(')
                });
                if !calls_poll {
                    continue;
                }
                let mentioned: BTreeSet<String> = m
                    .variant_mentions(&spec.output_enum, body)
                    .into_iter()
                    .map(|(_, v)| v)
                    .collect();
                let missing: Vec<&str> = variants
                    .iter()
                    .map(String::as_str)
                    .filter(|v| !mentioned.contains(*v))
                    .collect();
                if !missing.is_empty() {
                    findings.push(Finding::at(
                        Rule::MachineDiscipline,
                        rel,
                        m,
                        f.name_idx,
                        format!(
                            "drive loop `{}` polls `{}` but does not handle {}::{{{}}}; every variant must be handled explicitly",
                            f.name,
                            spec.poll_fn,
                            spec.output_enum,
                            missing.join(", ")
                        ),
                    ));
                }
            }
        }

        // (b) Effect-purity of the engine modules: machines emit frames
        // and timer requests; drivers own all I/O and concurrency.
        if !cfg.engine_modules.iter().any(|p| rel.starts_with(p.as_str())) {
            continue;
        }
        for (word, label) in [
            ("spawn", "engine machines must not create threads; drivers own all concurrency"),
            ("recv", "engine machines must not receive; frames arrive via `on_frame`"),
            ("recv_timeout", "engine machines must not block; deadlines are timer requests"),
            ("try_recv", "engine machines must not poll channels; frames arrive via `on_frame`"),
            ("read", "engine machines must not read streams; bytes arrive via `on_frame`"),
            ("read_exact", "engine machines must not read streams; bytes arrive via `on_frame`"),
            ("read_to_end", "engine machines must not read streams; bytes arrive via `on_frame`"),
            (
                "read_to_string",
                "engine machines must not read streams; bytes arrive via `on_frame`",
            ),
            ("sleep", "engine machines must not sleep; waits are `Output::Wait` deadlines"),
        ] {
            for i in m.idents(word) {
                if i + 1 < m.len() && m.is_punct(i + 1, '(') {
                    findings.push(Finding::at(
                        Rule::MachineDiscipline,
                        rel,
                        m,
                        i,
                        format!("`{word}(` inside a sans-IO engine module: {label}"),
                    ));
                }
            }
        }
    }
}

/// Rule `apply-discipline`: see module docs.
fn apply_discipline(
    models: &BTreeMap<String, FileModel>,
    cfg: &LintConfig,
    findings: &mut Vec<Finding>,
) {
    for (rel, m) in models {
        if !in_scopes(rel, &cfg.apply_scopes) {
            continue;
        }
        for (module, func) in [("fs", "write"), ("File", "create")] {
            for i in m.idents(func) {
                let qualified_call = i >= 3
                    && m.is_ident(i - 3, module)
                    && m.is_path_sep(i - 2)
                    && i + 1 < m.len()
                    && m.is_punct(i + 1, '(');
                if qualified_call && !m.is_use(i) {
                    findings.push(Finding::at(
                        Rule::ApplyDiscipline,
                        rel,
                        m,
                        i,
                        format!(
                            "bare `{module}::{func}(` on a sync-apply path; write through `msync_core::AtomicApplier` / `atomic_write_file` so a crash never leaves a torn replica"
                        ),
                    ));
                }
            }
        }
    }
}

/// Whether `name` names a frame or payload allocation — the values the
/// zero-copy wire paths move as `FrameBuf` shares.
fn frame_like(name: &str) -> bool {
    name.contains("frame") || name.contains("payload") || name == "bytes"
}

/// Base identifier of the receiver of `<recv>.method(` where `method_i`
/// is the method-name token, walking back over index/call suffixes so
/// `frames[0].clone()` and `encode_frame(p).to_vec()` resolve to
/// `frames` / `encode_frame`.
fn receiver_ident(m: &FileModel, method_i: usize) -> Option<String> {
    if method_i < 2 {
        return None;
    }
    let mut j = method_i - 2;
    loop {
        let (open, close) = if m.is_punct(j, ']') {
            ('[', ']')
        } else if m.is_punct(j, ')') {
            ('(', ')')
        } else {
            break;
        };
        let mut depth = 0usize;
        loop {
            if m.is_punct(j, close) {
                depth += 1;
            } else if m.is_punct(j, open) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j = j.checked_sub(1)?;
        }
        j = j.checked_sub(1)?;
    }
    (m.tok(j).kind == crate::tokens::TokenKind::Ident).then(|| m.text(j).to_owned())
}

/// Rule `alloc-discipline`: see module docs.
fn alloc_discipline(
    models: &BTreeMap<String, FileModel>,
    cfg: &LintConfig,
    findings: &mut Vec<Finding>,
) {
    for (rel, m) in models {
        if !in_scopes(rel, &cfg.alloc_scopes) {
            continue;
        }
        for method in ["to_vec", "clone"] {
            for i in m.idents(method) {
                if i + 1 >= m.len() || !m.is_punct(i + 1, '(') || i == 0 || !m.is_punct(i - 1, '.')
                {
                    continue;
                }
                let Some(recv) = receiver_ident(m, i) else { continue };
                if !frame_like(&recv) {
                    continue;
                }
                // Sanctioned copy sites are exempt by (file, function);
                // the innermost enclosing fn decides.
                let enclosing =
                    m.fns.iter().filter(|f| f.body.is_some_and(|(s, e)| s <= i && i <= e)).last();
                if enclosing.is_some_and(|f| {
                    cfg.alloc_allowed.iter().any(|(af, an)| af == rel && *an == f.name)
                }) {
                    continue;
                }
                findings.push(Finding::at(
                    Rule::AllocDiscipline,
                    rel,
                    m,
                    i,
                    format!(
                        "`{recv}.{method}()` copies a frame/payload allocation in a wire module; move a `FrameBuf` share (`share()` / `slice()`) instead, or route a genuinely needed copy through the sanctioned `copy_for_mutation`"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{LintConfig, WireSchema as WireSchemaSpec};

    const REGISTRY: &str = "crates/protocol/src/stats.rs";
    const MACHINE_REGISTRY: &str = "crates/core/src/engine/mod.rs";

    fn models(files: &[(&str, &str)]) -> BTreeMap<String, FileModel> {
        files.iter().map(|(rel, src)| ((*rel).to_owned(), FileModel::parse(src))).collect()
    }

    fn cfg() -> LintConfig {
        LintConfig::msync()
    }

    fn schema() -> WireSchemaSpec {
        cfg().wire_schemas.remove(0)
    }

    const PHASE_DECL: &str = "/// Tags.\npub enum Phase {\n    Setup,\n    Map,\n    Delta,\n}\n";
    const OUTPUT_DECL: &str =
        "pub enum Output {\n    Transmit { frame: u8 },\n    Attribute { phase: u8 },\n    Wait { deadline_us: u64 },\n    Done,\n}\n";

    #[test]
    fn wire_schema_flags_one_sided_encode_arm() {
        let m = models(&[
            (REGISTRY, PHASE_DECL),
            (
                "crates/net/src/tcp.rs",
                "fn tag(p: Phase) -> u8 { match p { Phase::Setup => 0, Phase::Map => 1 } }",
            ),
        ]);
        let mut fs = Vec::new();
        wire_schema(&m, &schema(), &mut fs);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("misses {Delta}"), "{}", fs[0].message);
        assert_eq!(fs[0].file, "crates/net/src/tcp.rs");
        assert!(fs[0].line >= 1 && fs[0].col > 1, "span points at the match keyword");
    }

    #[test]
    fn wire_schema_flags_one_sided_decode_arm() {
        let m = models(&[
            (REGISTRY, PHASE_DECL),
            (
                "crates/protocol/src/arq.rs",
                "fn parse(b: u8) -> Option<Phase> { match b { 0 => Some(Phase::Setup), 1 => Some(Phase::Map), _ => None } }",
            ),
        ]);
        let mut fs = Vec::new();
        wire_schema(&m, &schema(), &mut fs);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("misses {Delta}"), "{}", fs[0].message);
    }

    fn admin_schema() -> WireSchemaSpec {
        cfg()
            .wire_schemas
            .into_iter()
            .find(|s| s.enum_name == "AdminCmd")
            .expect("AdminCmd schema is registered")
    }

    const ADMIN_DECL: &str = "/// Verbs.\npub(crate) enum AdminCmd {\n    Reload(String),\n    Stats { json: bool },\n    Sessions,\n    Health,\n}\n";

    #[test]
    fn wire_schema_covers_admin_verb_dispatch() {
        // An executor missing one verb arm is the admin-plane version of
        // a one-sided frame tag: the parser accepts `health`, the
        // dispatcher cannot answer it.
        let m = models(&[
            ("crates/net/src/handshake.rs", ADMIN_DECL),
            (
                "crates/net/src/mux.rs",
                "fn execute(cmd: AdminCmd) -> String { match cmd { AdminCmd::Reload(n) => reload(n), AdminCmd::Stats { json } => stats(json), AdminCmd::Sessions => sessions() } }",
            ),
        ]);
        let mut fs = Vec::new();
        wire_schema(&m, &admin_schema(), &mut fs);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("misses {Health}"), "{}", fs[0].message);
        assert_eq!(fs[0].file, "crates/net/src/mux.rs");

        // The full verb set dispatches cleanly.
        let ok = models(&[
            ("crates/net/src/handshake.rs", ADMIN_DECL),
            (
                "crates/net/src/mux.rs",
                "fn execute(cmd: AdminCmd) -> String { match cmd { AdminCmd::Reload(n) => reload(n), AdminCmd::Stats { json } => stats(json), AdminCmd::Sessions => sessions(), AdminCmd::Health => health() } }",
            ),
        ]);
        let mut fs = Vec::new();
        wire_schema(&ok, &admin_schema(), &mut fs);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn wire_schema_accepts_complete_matches_and_value_uses() {
        let m = models(&[
            (REGISTRY, PHASE_DECL),
            (
                "crates/net/src/handshake.rs",
                "fn tag(p: Phase) -> u8 { match p { Phase::Setup => 0, Phase::Map => 1, Phase::Delta => 2 } }\n\
                 fn parse(b: u8) -> Option<Phase> { match b { 0 => Some(Phase::Setup), 1 => Some(Phase::Map), 2 => Some(Phase::Delta), _ => None } }\n\
                 fn hello(r: Result<u8, u8>) { match r { Ok(v) => send(v, Phase::Setup), Err(_) => reject(Phase::Setup) } }",
            ),
        ]);
        let mut fs = Vec::new();
        wire_schema(&m, &schema(), &mut fs);
        assert!(fs.is_empty(), "complete matches and single-variant value uses are clean: {fs:?}");
    }

    #[test]
    fn wire_schema_flags_duplicate_registry_and_missing_enum() {
        let m = models(&[
            (REGISTRY, PHASE_DECL),
            ("crates/net/src/mux.rs", "pub enum Phase { Setup, Map, Delta }"),
        ]);
        let mut fs = Vec::new();
        wire_schema(&m, &schema(), &mut fs);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("exactly one declaration"), "{}", fs[0].message);

        let empty = models(&[(REGISTRY, "// no enum here\n")]);
        let mut fs = Vec::new();
        wire_schema(&empty, &schema(), &mut fs);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("must declare `enum Phase`"), "{}", fs[0].message);
    }

    #[test]
    fn charge_point_requires_pairing() {
        let m = models(&[(
            "crates/net/src/tcp.rs",
            "fn good(&mut self) {\n    self.stats.record(Direction::Sent, self.phase, n);\n    self.recorder.record(self.clock.now_micros(), EventKind::FrameSend { seq: 0 }, n);\n}\n\
             fn uncharged(&mut self) {\n    self.recorder.record(t, EventKind::FrameSend { seq: 0 }, n);\n}\n\
             fn unjournaled(&mut self) {\n    self.stats.record(Direction::Received, phase, n);\n}\n\
             fn neutral(&mut self) {\n    self.recorder.record(t, EventKind::Handshake { ok: true }, 0);\n}\n\
             fn snapshot(&self) -> TrafficStats {\n    let mut out = self.stats.clone();\n    out.record(Direction::Sent, phase, pending);\n    out\n}\n",
        )]);
        let mut fs = Vec::new();
        charge_point(&m, &cfg(), &mut fs);
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(fs[0].message.contains("`uncharged`"), "{}", fs[0].message);
        assert!(fs[1].message.contains("`unjournaled`"), "{}", fs[1].message);
    }

    #[test]
    fn charge_point_reject_path_must_be_metered() {
        // Sends the rejection without metering it: flagged.
        let m = models(&[(
            "crates/net/src/handshake.rs",
            "fn refuse(&mut self, o: HelloOutcome) {\n    if let HelloOutcome::Reject { reply, error } = o {\n        self.t.send(&reply, Phase::Setup);\n    }\n}\n",
        )]);
        let mut fs = Vec::new();
        charge_point(&m, &cfg(), &mut fs);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("`refuse`"), "{}", fs[0].message);
        assert!(fs[0].message.contains("Handshake"), "{}", fs[0].message);

        // Same shape with the metering present: clean. (queue_send is
        // the multiplexer's transmit spelling.)
        let m = models(&[(
            "crates/net/src/mux.rs",
            "fn refuse(&mut self, o: HelloOutcome) {\n    if let HelloOutcome::Reject { reply, error } = o {\n        self.queue_send(&reply, Phase::Setup, false);\n        self.recorder.record(t, EventKind::Handshake { ok: false }, 0);\n    }\n}\n",
        )]);
        let mut fs = Vec::new();
        charge_point(&m, &cfg(), &mut fs);
        assert!(fs.is_empty(), "metered reject path is clean: {fs:?}");

        // A pure verdict-builder never touches the wire: exempt.
        let m = models(&[(
            "crates/net/src/handshake.rs",
            "fn eval(text: &str) -> HelloOutcome {\n    HelloOutcome::Reject { reply: Vec::new(), error: NetError::Handshake(text.into()) }\n}\n",
        )]);
        let mut fs = Vec::new();
        charge_point(&m, &cfg(), &mut fs);
        assert!(fs.is_empty(), "pure reject builders are exempt: {fs:?}");
    }

    #[test]
    fn charge_point_ignores_out_of_scope_crates_and_tests() {
        let src = "fn unjournaled(&mut self) { self.stats.record(d, p, n); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t(&mut self) { self.stats.record(d, p, n); }\n}\n";
        let m = models(&[("crates/core/src/session.rs", src)]);
        let mut fs = Vec::new();
        charge_point(&m, &cfg(), &mut fs);
        assert!(fs.is_empty(), "core is not a charge crate: {fs:?}");
        let m = models(&[(
            "crates/net/src/tcp.rs",
            "#[cfg(test)]\nmod tests {\n    fn t(&mut self) { self.stats.record(d, p, n); }\n}\n",
        )]);
        let mut fs = Vec::new();
        charge_point(&m, &cfg(), &mut fs);
        assert!(fs.is_empty(), "test code is exempt: {fs:?}");
    }

    #[test]
    fn machine_discipline_flags_incomplete_drive_loop() {
        let m = models(&[
            (MACHINE_REGISTRY, OUTPUT_DECL),
            (
                "crates/net/src/mux.rs",
                "fn pump(&mut self) {\n    loop {\n        match self.machine.poll_output(now) {\n            Ok(Output::Transmit { frame }) => send(frame),\n            Ok(Output::Attribute { phase }) => charge(phase),\n            Ok(Output::Done) => break,\n            Err(e) => fail(e),\n        }\n    }\n}\n",
            ),
        ]);
        let mut fs = Vec::new();
        machine_discipline(&m, &cfg(), &mut fs);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("Output::{Wait}"), "{}", fs[0].message);
        assert!(fs[0].message.contains("`pump`"), "{}", fs[0].message);
    }

    #[test]
    fn machine_discipline_accepts_complete_drive_loop_and_poll_impl() {
        let m = models(&[
            (MACHINE_REGISTRY, OUTPUT_DECL),
            (
                "crates/net/src/mux.rs",
                "fn pump(&mut self) {\n    match self.machine.poll_output(now) {\n        Ok(Output::Transmit { frame }) => send(frame),\n        Ok(Output::Attribute { phase }) => charge(phase),\n        Ok(Output::Wait { deadline_us }) => arm(deadline_us),\n        Ok(Output::Done) => finish(),\n        Err(e) => fail(e),\n    }\n}\n\
                 fn poll_output(&mut self) -> Output { self.inner.poll_output(now) }\n",
            ),
        ]);
        let mut fs = Vec::new();
        machine_discipline(&m, &cfg(), &mut fs);
        assert!(fs.is_empty(), "complete loops and poll_output impls are clean: {fs:?}");
    }

    #[test]
    fn machine_discipline_flags_effectful_engine_code() {
        let m = models(&[
            (MACHINE_REGISTRY, OUTPUT_DECL),
            (
                "crates/core/src/engine/arq.rs",
                "fn bad(&mut self) { thread::spawn(|| {}); rx.recv_timeout(d); s.read(&mut b);\n    thread::sleep(d); let x = self.read_pos; read_varint(&b); }\n",
            ),
        ]);
        let mut fs = Vec::new();
        machine_discipline(&m, &cfg(), &mut fs);
        // spawn, recv_timeout, read, sleep fire; `read_pos` (field) and
        // `read_varint` (distinct identifier) do not.
        let purity: Vec<_> = fs.iter().filter(|f| f.message.contains("sans-IO")).collect();
        assert_eq!(purity.len(), 4, "{fs:?}");
        assert!(purity.iter().all(|f| f.file == "crates/core/src/engine/arq.rs"));
    }

    #[test]
    fn machine_discipline_reports_missing_output_registry() {
        let m = models(&[("crates/net/src/mux.rs", "fn f() {}")]);
        let mut fs = Vec::new();
        machine_discipline(&m, &cfg(), &mut fs);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("must declare `enum Output`"), "{}", fs[0].message);
    }

    #[test]
    fn apply_discipline_flags_bare_writes_on_apply_paths() {
        let m = models(&[
            (
                "crates/cli/src/commands.rs",
                "fn apply(&self) {\n    fs::write(&path, &data)?;\n    std::fs::write(other, bytes)?;\n}\n\
                 fn open(&self) -> io::Result<File> { File::create(&path) }\n\
                 #[cfg(test)]\nmod tests {\n    fn t() { fs::write(p, d).unwrap(); let _ = File::create(p); }\n}\n",
            ),
            // Out of scope: the applier itself lives in core.
            ("crates/core/src/apply.rs", "fn raw(&self) { fs::write(&tmp, data)?; }\n"),
        ]);
        let mut fs = Vec::new();
        apply_discipline(&m, &cfg(), &mut fs);
        assert_eq!(fs.len(), 3, "{fs:?}");
        assert!(fs.iter().all(|f| f.file == "crates/cli/src/commands.rs"), "{fs:?}");
        assert!(fs[0].message.contains("`fs::write(`"), "{}", fs[0].message);
        assert!(fs[2].message.contains("`File::create(`"), "{}", fs[2].message);
    }

    #[test]
    fn apply_discipline_accepts_applier_calls_and_unqualified_names() {
        let m = models(&[(
            "crates/net/src/mux.rs",
            "fn metrics(&self) { let _ = msync_core::atomic_write_file(path, text.as_bytes()); }\n\
             fn apply(&self) { self.applier.apply(&name, &data)?; }\n\
             fn other(&self) { self.journal.write(entry); create(thing); }\n\
             use std::fs::File;\n",
        )]);
        let mut fs = Vec::new();
        apply_discipline(&m, &cfg(), &mut fs);
        assert!(fs.is_empty(), "applier calls and unqualified names are clean: {fs:?}");
    }

    #[test]
    fn deprecation_debt_counts_attributes() {
        let m = models(&[(
            "crates/core/src/lib.rs",
            "#[deprecated(since = \"0.5.0\", note = \"use sync_file_with\")]\npub fn old() {}\n\
             #[deprecated]\npub fn older() {}\n\
             #[cfg(test)]\nmod tests {\n    #[deprecated]\n    fn t() {}\n}\n",
        )]);
        assert_eq!(deprecation_debt(&m), 2, "test-gated attributes do not count");
    }

    #[test]
    fn alloc_discipline_flags_frame_copies_in_wire_modules() {
        let m = models(&[(
            "crates/core/src/engine/arq.rs",
            "fn resend(&mut self) {\n    let a = frame.clone();\n    let b = self.payload.to_vec();\n    let c = frames[0].clone();\n    let d = encode_frame(&p).to_vec();\n    let ok = pool.clone();\n    let ok2 = name.to_vec();\n}\n",
        )]);
        let mut fs = Vec::new();
        alloc_discipline(&m, &cfg(), &mut fs);
        assert_eq!(fs.len(), 4, "frame/payload receivers fire, pool/name do not: {fs:?}");
        assert!(fs.iter().all(|f| f.rule == Rule::AllocDiscipline));
        assert!(fs.iter().any(|f| f.message.contains("`frame.clone()`")), "{fs:?}");
        assert!(fs.iter().any(|f| f.message.contains("`payload.to_vec()`")), "{fs:?}");
        assert!(fs.iter().any(|f| f.message.contains("`frames.clone()`")), "{fs:?}");
        assert!(fs.iter().any(|f| f.message.contains("`encode_frame.to_vec()`")), "{fs:?}");
    }

    #[test]
    fn alloc_discipline_exempts_allowlisted_sites_tests_and_other_scopes() {
        // The sanctioned copy site is exempt; the identical copy under
        // any other function name in the same file still fires.
        let m = models(&[(
            "crates/protocol/src/fault.rs",
            "fn copy_for_mutation(payload: &[u8]) -> Vec<u8> {\n    payload.to_vec()\n}\nfn sneaky(payload: &[u8]) -> Vec<u8> {\n    payload.to_vec()\n}\n",
        )]);
        let mut fs = Vec::new();
        alloc_discipline(&m, &cfg(), &mut fs);
        assert_eq!(fs.len(), 1, "only the unsanctioned copy fires: {fs:?}");
        assert!(fs[0].message.contains("`payload.to_vec()`"), "{}", fs[0].message);

        // Test code and out-of-scope modules never fire.
        let m = models(&[
            (
                "crates/protocol/src/channel.rs",
                "#[cfg(test)]\nmod tests {\n    fn t() { let x = frame.clone(); }\n}\n",
            ),
            ("crates/core/src/session.rs", "fn f() { let x = frame.clone(); }\n"),
        ]);
        let mut fs = Vec::new();
        alloc_discipline(&m, &cfg(), &mut fs);
        assert!(fs.is_empty(), "tests and non-wire modules are out of scope: {fs:?}");
    }

    #[test]
    fn machine_spec_can_be_disabled() {
        let mut c = cfg();
        c.machine = None;
        let m = models(&[(
            "crates/net/src/mux.rs",
            "fn pump(&mut self) { let _ = self.m.poll_output(now); }",
        )]);
        let mut fs = Vec::new();
        machine_discipline(&m, &c, &mut fs);
        assert!(fs.is_empty(), "no machine spec, no drive-loop checks: {fs:?}");
    }
}
