//! First-party static-analysis gate for the msync workspace.
//!
//! The paper's multi-round map-construction protocol only works if the
//! client and server compute byte-identical weak hashes, block
//! partitions, and group-testing batches in every round. Several
//! classes of source-level defect silently break that symmetry:
//!
//! 1. a panic on one endpoint mid-round (the peer blocks forever),
//! 2. a lossy `as` narrowing cast in a wire-format encoder/decoder
//!    (bytes differ between the sides),
//! 3. hidden nondeterminism — ambient clocks or RNG — inside protocol
//!    logic (the two sides no longer compute the same partitions),
//! 4. an unbounded blocking `recv()` (a dead peer turns a lost frame
//!    into a session that hangs forever instead of a typed error), and
//! 5. *cross-file asymmetry*: a frame-tag match arm present on the
//!    encode side but not the decode side, a socket write whose bytes
//!    are charged to `TrafficStats` but never journaled (or vice
//!    versa), a drive loop that silently drops an `Output` variant.
//!
//! `xtask` enforces the corresponding invariants plus crate hygiene
//! (`#![forbid(unsafe_code)]`, `#![deny(missing_docs)]`) and build
//! hermeticity (first-party path dependencies only) with a
//! dependency-free, token-aware engine: [`tokens`] lexes each file with
//! exact spans, [`model`] resolves imports / function boundaries /
//! match arms per file, [`rules`] runs the per-file rule classes over
//! those models, [`passes`] runs the cross-file protocol passes
//! (wire-schema, charge-point, machine-discipline,
//! apply-discipline), and [`baseline`]
//! tracks pre-existing debt so the gate ratchets down instead of
//! blocking on history. The older masked-string [`scanner`] remains as
//! a fallback and is differentially tested against the lexer.
//!
//! Run it as `cargo run -p xtask -- lint`; the root integration test
//! `tests/lint_gate.rs` runs the same [`gate`] entry point so plain
//! `cargo test` enforces the invariants too.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baseline;
pub mod metrics;
pub mod model;
pub mod passes;
pub mod report;
pub mod rules;
pub mod scanner;
pub mod tokens;

pub use baseline::{Baseline, BaselineOutcome};
pub use rules::{analyze, lint_workspace, Analysis, Finding, LintConfig, Rule};

use std::io;
use std::path::Path;

/// Run the full gate: lint `root`, filter through the baseline file at
/// `root/lint-baseline.toml` (treated as empty if absent), and return
/// the outcome (including the informational deprecation-debt count).
/// The gate passes iff `outcome.active.is_empty()`.
///
/// # Errors
/// Returns any I/O error encountered while reading the tree.
pub fn gate(root: &Path, cfg: &LintConfig) -> io::Result<BaselineOutcome> {
    let analysis = analyze(root, cfg)?;
    let baseline_path = root.join("lint-baseline.toml");
    let baseline = if baseline_path.is_file() {
        Baseline::parse(&std::fs::read_to_string(&baseline_path)?)
    } else {
        Baseline::default()
    };
    let mut outcome = baseline.apply(analysis.findings);
    outcome.deprecation_debt = analysis.deprecation_debt;
    Ok(outcome)
}

/// Locate the workspace root by walking up from `start` until a
/// `Cargo.toml` containing a `[workspace]` table is found.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.lines().any(|l| l.trim() == "[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
