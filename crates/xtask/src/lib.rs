//! First-party static-analysis gate for the msync workspace.
//!
//! The paper's multi-round map-construction protocol only works if the
//! client and server compute byte-identical weak hashes, block
//! partitions, and group-testing batches in every round. Three classes
//! of source-level defect silently break that symmetry:
//!
//! 1. a panic on one endpoint mid-round (the peer blocks forever),
//! 2. a lossy `as` narrowing cast in a wire-format encoder/decoder
//!    (bytes differ between the sides), and
//! 3. hidden nondeterminism — ambient clocks or RNG — inside protocol
//!    logic (the two sides no longer compute the same partitions), and
//! 4. an unbounded blocking `recv()` (a dead peer turns a lost frame
//!    into a session that hangs forever instead of a typed error).
//!
//! `xtask` enforces the corresponding invariants plus crate hygiene
//! (`#![forbid(unsafe_code)]`, `#![deny(missing_docs)]`) and build
//! hermeticity (first-party path dependencies only) with a
//! dependency-free scanner: [`scanner`] masks comments/strings and
//! `#[cfg(test)]` blocks, [`rules`] runs the seven rule classes, and
//! [`baseline`] tracks pre-existing debt so the gate ratchets down
//! instead of blocking on history.
//!
//! Run it as `cargo run -p xtask -- lint`; the root integration test
//! `tests/lint_gate.rs` runs the same [`gate`] entry point so plain
//! `cargo test` enforces the invariants too.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baseline;
pub mod report;
pub mod rules;
pub mod scanner;

pub use baseline::{Baseline, BaselineOutcome};
pub use rules::{lint_workspace, Finding, LintConfig, Rule};

use std::io;
use std::path::Path;

/// Run the full gate: lint `root`, filter through the baseline file at
/// `root/lint-baseline.toml` (treated as empty if absent), and return
/// the outcome. The gate passes iff `outcome.active.is_empty()`.
///
/// # Errors
/// Returns any I/O error encountered while reading the tree.
pub fn gate(root: &Path, cfg: &LintConfig) -> io::Result<BaselineOutcome> {
    let findings = lint_workspace(root, cfg)?;
    let baseline_path = root.join("lint-baseline.toml");
    let baseline = if baseline_path.is_file() {
        Baseline::parse(&std::fs::read_to_string(&baseline_path)?)
    } else {
        Baseline::default()
    };
    Ok(baseline.apply(findings))
}

/// Locate the workspace root by walking up from `start` until a
/// `Cargo.toml` containing a `[workspace]` table is found.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.lines().any(|l| l.trim() == "[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
