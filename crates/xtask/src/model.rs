//! A lightweight structural model of one Rust source file.
//!
//! Built on the token stream from [`crate::tokens`], this layer
//! resolves just enough structure for the lint passes without a full
//! parser:
//!
//! * **code tokens** — the significant (non-whitespace, non-comment)
//!   tokens, each knowing whether it sits inside a `#[cfg(test)]`-gated
//!   item body or inside a `use` declaration;
//! * **import map** — every `use` item, including grouped imports and
//!   `as` aliases, resolved to `local name -> full path segments`, so a
//!   rule can see through `use std::time::Instant as I`;
//! * **function boundaries** — `fn name` with the token range of its
//!   body, so cross-file passes can reason per function ("charge and
//!   trace event in the *same* function");
//! * **match extraction** — `match` expressions with their arm pattern
//!   and arm body token ranges, so the wire-schema and
//!   machine-discipline passes can compare arm coverage.
//!
//! Indices handed out by this module are positions into the *code
//! token* list (`code`), not the raw token list; [`FileModel::tok`]
//! maps back to the underlying [`Token`] for spans.

use crate::tokens::{lex, Token, TokenKind};
use std::collections::BTreeMap;

/// One function item: its name and the code-token range of its body.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The function's name.
    pub name: String,
    /// Code-token index of the name identifier.
    pub name_idx: usize,
    /// Code-token range of the body, inclusive of both braces. `None`
    /// for bodyless declarations (trait methods).
    pub body: Option<(usize, usize)>,
}

/// One `match` expression: code-token positions of its parts.
#[derive(Debug, Clone)]
pub struct MatchInfo {
    /// Code-token index of the `match` keyword.
    pub kw_idx: usize,
    /// Code-token range of the `{ ... }` arm block, braces inclusive.
    pub block: (usize, usize),
    /// Per arm: `(pattern range, body range)`, both inclusive. The
    /// pattern range covers any `if` guard too.
    pub arms: Vec<((usize, usize), (usize, usize))>,
}

/// Structural view of one source file.
#[derive(Debug)]
pub struct FileModel {
    /// The raw source text.
    pub src: String,
    /// The complete token stream (tiles `src`).
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the significant (code) tokens.
    code: Vec<usize>,
    /// Per code token: inside a `#[cfg(test)]`-gated item body.
    in_test: Vec<bool>,
    /// Per code token: inside a `use ... ;` declaration.
    in_use: Vec<bool>,
    /// `local name -> full path segments` for every use declaration.
    pub imports: BTreeMap<String, Vec<String>>,
    /// Every `fn` item (including test functions; callers filter via
    /// [`FileModel::is_test`]).
    pub fns: Vec<FnInfo>,
}

impl FileModel {
    /// Lex and model `src`.
    #[must_use]
    pub fn parse(src: &str) -> FileModel {
        let tokens = lex(src);
        let code: Vec<usize> = (0..tokens.len()).filter(|&i| tokens[i].is_code()).collect();
        let mut model = FileModel {
            src: src.to_owned(),
            tokens,
            code,
            in_test: Vec::new(),
            in_use: Vec::new(),
            imports: BTreeMap::new(),
            fns: Vec::new(),
        };
        model.in_test = model.compute_test_mask();
        model.in_use = vec![false; model.code.len()];
        model.compute_imports();
        model.compute_fns();
        model
    }

    /// Number of code tokens.
    #[must_use]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the file has no code tokens.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The underlying token for code-token index `i`.
    #[must_use]
    pub fn tok(&self, i: usize) -> &Token {
        &self.tokens[self.code[i]]
    }

    /// Text of code token `i`.
    #[must_use]
    pub fn text(&self, i: usize) -> &str {
        self.tok(i).text(&self.src)
    }

    /// Whether code token `i` is inside a `#[cfg(test)]`-gated body.
    #[must_use]
    pub fn is_test(&self, i: usize) -> bool {
        self.in_test[i]
    }

    /// Whether code token `i` is part of a `use` declaration.
    #[must_use]
    pub fn is_use(&self, i: usize) -> bool {
        self.in_use[i]
    }

    /// Whether code token `i` is an identifier with text `word`.
    #[must_use]
    pub fn is_ident(&self, i: usize, word: &str) -> bool {
        self.tok(i).kind == TokenKind::Ident && self.text(i) == word
    }

    /// Whether code token `i` is punctuation `ch`.
    #[must_use]
    pub fn is_punct(&self, i: usize, ch: char) -> bool {
        self.tok(i).kind == TokenKind::Punct && self.text(i).starts_with(ch)
    }

    /// Whether code tokens `i` and `i + 1` form `::` (adjacent colons).
    #[must_use]
    pub fn is_path_sep(&self, i: usize) -> bool {
        i + 1 < self.len()
            && self.is_punct(i, ':')
            && self.is_punct(i + 1, ':')
            && self.tok(i).end == self.tok(i + 1).start
    }

    /// Resolve a local name through the import map: full path segments
    /// if `name` was introduced by a `use` (aliased or not).
    #[must_use]
    pub fn resolve(&self, name: &str) -> Option<&[String]> {
        self.imports.get(name).map(Vec::as_slice)
    }

    /// Iterate code-token indices of non-test identifiers equal to `word`.
    pub fn idents<'a>(&'a self, word: &'a str) -> impl Iterator<Item = usize> + 'a {
        (0..self.len()).filter(move |&i| !self.is_test(i) && self.is_ident(i, word))
    }

    /// Find the first occurrence of `seq` (matched against token texts)
    /// in non-test code starting at code index `from`. `::` counts as
    /// two tokens.
    #[must_use]
    pub fn find_seq(&self, from: usize, seq: &[&str]) -> Option<usize> {
        (from..self.len().saturating_sub(seq.len() - 1)).find(|&i| {
            !self.is_test(i) && seq.iter().enumerate().all(|(k, w)| self.text(i + k) == *w)
        })
    }

    /// Index of the matching close brace for the open brace at `open`,
    /// tracking `{}` nesting only (sufficient once inside a body).
    #[must_use]
    pub fn matching_brace(&self, open: usize) -> Option<usize> {
        let mut depth = 0usize;
        for i in open..self.len() {
            if self.is_punct(i, '{') {
                depth += 1;
            } else if self.is_punct(i, '}') {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
        }
        None
    }

    /// Mark which code tokens fall inside `#[cfg(test)]`-gated bodies.
    fn compute_test_mask(&self) -> Vec<bool> {
        let mut mask = vec![false; self.code.len()];
        let mut i = 0usize;
        while i + 6 < self.code.len() {
            let gated = self.is_punct(i, '#')
                && self.is_punct(i + 1, '[')
                && self.is_ident(i + 2, "cfg")
                && self.is_punct(i + 3, '(')
                && self.is_ident(i + 4, "test")
                && self.is_punct(i + 5, ')')
                && self.is_punct(i + 6, ']');
            if !gated {
                i += 1;
                continue;
            }
            // Blank the gated item's body: the next top-level brace block.
            let Some(open) = (i + 7..self.len()).find(|&j| self.is_punct(j, '{')) else {
                break;
            };
            let close = self.matching_brace(open).unwrap_or(self.len() - 1);
            for flag in &mut mask[open..=close] {
                *flag = true;
            }
            i = close + 1;
        }
        mask
    }

    /// Parse every `use` declaration into the import map and mark the
    /// declaration's tokens.
    fn compute_imports(&mut self) {
        let mut i = 0usize;
        while i < self.len() {
            if self.is_test(i) || !self.is_ident(i, "use") {
                i += 1;
                continue;
            }
            // Statement extent: up to the terminating `;`.
            let end =
                (i + 1..self.len()).find(|&j| self.is_punct(j, ';')).unwrap_or(self.len() - 1);
            for j in i..=end {
                self.in_use[j] = true;
            }
            let mut entries: Vec<(String, Vec<String>)> = Vec::new();
            self.parse_use_tree(i + 1, end, &mut Vec::new(), &mut entries);
            for (name, path) in entries {
                self.imports.insert(name, path);
            }
            i = end + 1;
        }
    }

    /// Recursive descent over a use tree between code indices
    /// `(from..to)`: `a::b::{c, d as e, f::g}`.
    fn parse_use_tree(
        &self,
        from: usize,
        to: usize,
        prefix: &mut Vec<String>,
        out: &mut Vec<(String, Vec<String>)>,
    ) {
        let saved = prefix.len();
        let mut i = from;
        while i < to {
            if self.tok(i).kind == TokenKind::Ident {
                let seg = self.text(i).to_owned();
                if seg == "as" {
                    // `as Alias`: rename the entry just emitted for the
                    // current path.
                    if i + 1 < to && self.tok(i + 1).kind == TokenKind::Ident {
                        let alias = self.text(i + 1).to_owned();
                        out.pop();
                        out.push((alias, prefix.clone()));
                        i += 2;
                        continue;
                    }
                } else {
                    prefix.push(seg.clone());
                    // Leaf unless followed by `::`.
                    if !(i + 2 < to && self.is_path_sep(i + 1)) {
                        let name = if seg == "self" {
                            prefix[prefix.len().saturating_sub(2)].clone()
                        } else {
                            seg
                        };
                        out.push((name, prefix.clone()));
                        // Keep the full path only while an `as` alias
                        // may still rename this entry.
                        if !(i + 1 < to && self.is_ident(i + 1, "as")) {
                            prefix.truncate(saved);
                        }
                    }
                    i += 1;
                    continue;
                }
            }
            if self.is_punct(i, '{') {
                // Group: each comma-separated subtree shares the prefix.
                let close = self.matching_brace(i).unwrap_or(to);
                let mut part = i + 1;
                let mut depth = 0usize;
                for j in i + 1..close {
                    if self.is_punct(j, '{') {
                        depth += 1;
                    } else if self.is_punct(j, '}') {
                        depth = depth.saturating_sub(1);
                    } else if depth == 0 && self.is_punct(j, ',') {
                        self.parse_use_tree(part, j, &mut prefix.clone(), out);
                        part = j + 1;
                    }
                }
                self.parse_use_tree(part, close, &mut prefix.clone(), out);
                prefix.truncate(saved);
                i = close + 1;
                continue;
            }
            if self.is_punct(i, ',') {
                prefix.truncate(saved);
            }
            i += 1;
        }
        prefix.truncate(saved);
    }

    /// Find every `fn` item and its body range.
    fn compute_fns(&mut self) {
        let mut fns = Vec::new();
        let mut i = 0usize;
        while i + 1 < self.len() {
            if !self.is_ident(i, "fn") {
                i += 1;
                continue;
            }
            // `fn(` is a function-pointer type, not an item.
            let name_idx = i + 1;
            if self.tok(name_idx).kind != TokenKind::Ident {
                i += 1;
                continue;
            }
            let name = self.text(name_idx).to_owned();
            // Scan for the body `{` at paren/bracket depth 0, stopping
            // at `;` (bodyless) or another `fn`.
            let mut depth = 0i32;
            let mut body = None;
            let mut j = name_idx + 1;
            while j < self.len() {
                if self.is_punct(j, '(') || self.is_punct(j, '[') {
                    depth += 1;
                } else if self.is_punct(j, ')') || self.is_punct(j, ']') {
                    depth -= 1;
                } else if depth == 0 && self.is_punct(j, ';') {
                    break;
                } else if depth == 0 && self.is_punct(j, '{') {
                    let close = self.matching_brace(j).unwrap_or(self.len() - 1);
                    body = Some((j, close));
                    break;
                }
                j += 1;
            }
            fns.push(FnInfo { name, name_idx, body });
            // Resume after the header; nested fns inside the body are
            // found by the continuing scan.
            i = name_idx + 1;
        }
        self.fns = fns;
    }

    /// Extract every `match` expression whose `match` keyword lies in
    /// `range` (code-token indices, inclusive).
    #[must_use]
    pub fn matches_in(&self, range: (usize, usize)) -> Vec<MatchInfo> {
        let mut out = Vec::new();
        let mut i = range.0;
        while i <= range.1.min(self.len().saturating_sub(1)) {
            if !self.is_ident(i, "match") || self.is_test(i) {
                i += 1;
                continue;
            }
            // Scrutinee: up to the arm block's `{` at depth 0. Struct
            // literals are syntactically banned in match scrutinees, so
            // the first depth-0 `{` opens the arm block.
            let mut depth = 0i32;
            let mut open = None;
            for j in i + 1..=range.1.min(self.len() - 1) {
                if self.is_punct(j, '(') || self.is_punct(j, '[') {
                    depth += 1;
                } else if self.is_punct(j, ')') || self.is_punct(j, ']') {
                    depth -= 1;
                } else if depth == 0 && self.is_punct(j, '{') {
                    open = Some(j);
                    break;
                }
            }
            let Some(open) = open else {
                i += 1;
                continue;
            };
            let close = match self.matching_brace(open) {
                Some(c) => c,
                None => {
                    i = open + 1;
                    continue;
                }
            };
            out.push(MatchInfo {
                kw_idx: i,
                block: (open, close),
                arms: self.split_arms(open, close),
            });
            i = open + 1; // nested matches inside arms are still found
        }
        out
    }

    /// Split the arm block `(open, close)` into `(pattern, body)` ranges.
    fn split_arms(&self, open: usize, close: usize) -> Vec<((usize, usize), (usize, usize))> {
        let mut arms = Vec::new();
        let mut i = open + 1;
        while i < close {
            // Pattern: until `=>` at depth 0. Patterns may contain
            // braces (struct patterns), parens, brackets.
            let pat_start = i;
            let mut depth = 0i32;
            let mut arrow = None;
            let mut j = i;
            while j < close {
                if self.is_punct(j, '(') || self.is_punct(j, '[') || self.is_punct(j, '{') {
                    depth += 1;
                } else if self.is_punct(j, ')') || self.is_punct(j, ']') || self.is_punct(j, '}') {
                    depth -= 1;
                } else if depth == 0
                    && self.is_punct(j, '=')
                    && j + 1 < close
                    && self.is_punct(j + 1, '>')
                    && self.tok(j).end == self.tok(j + 1).start
                {
                    arrow = Some(j);
                    break;
                }
                j += 1;
            }
            let Some(arrow) = arrow else { break };
            if arrow == pat_start {
                break; // malformed; bail rather than loop
            }
            // Body: a brace block (optionally followed by `,`), or an
            // expression up to `,` at depth 0 (or the block's end).
            let body_start = arrow + 2;
            if body_start >= close {
                arms.push(((pat_start, arrow - 1), (arrow + 1, close.saturating_sub(1))));
                break;
            }
            let body_end;
            if self.is_punct(body_start, '{') {
                let bclose = self.matching_brace(body_start).unwrap_or(close - 1).min(close - 1);
                body_end = bclose;
                i = bclose + 1;
                if i < close && self.is_punct(i, ',') {
                    i += 1;
                }
            } else {
                let mut depth = 0i32;
                let mut k = body_start;
                while k < close {
                    if self.is_punct(k, '(') || self.is_punct(k, '[') || self.is_punct(k, '{') {
                        depth += 1;
                    } else if self.is_punct(k, ')')
                        || self.is_punct(k, ']')
                        || self.is_punct(k, '}')
                    {
                        depth -= 1;
                    } else if depth == 0 && self.is_punct(k, ',') {
                        break;
                    }
                    k += 1;
                }
                body_end = k.saturating_sub(1).max(body_start);
                i = (k + 1).min(close);
            }
            arms.push(((pat_start, arrow - 1), (body_start, body_end)));
        }
        arms
    }

    /// Collect the set of `Enum::Variant` mentions within a code-token
    /// range (inclusive), for a given enum name.
    #[must_use]
    pub fn variant_mentions(&self, enum_name: &str, range: (usize, usize)) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        let hi = range.1.min(self.len().saturating_sub(1));
        let mut i = range.0;
        while i + 3 <= hi {
            if self.is_ident(i, enum_name)
                && self.is_path_sep(i + 1)
                && self.tok(i + 3).kind == TokenKind::Ident
            {
                out.push((i, self.text(i + 3).to_owned()));
                i += 4;
                continue;
            }
            i += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn import_map_resolves_aliases_and_groups() {
        let m = FileModel::parse(
            "use std::time::Instant as I;\nuse std::sync::mpsc::{channel, Receiver as Rx};\nuse crate::foo::bar;\n",
        );
        assert_eq!(m.resolve("I").unwrap().join("::"), "std::time::Instant");
        assert_eq!(m.resolve("Rx").unwrap().join("::"), "std::sync::mpsc::Receiver");
        assert_eq!(m.resolve("channel").unwrap().join("::"), "std::sync::mpsc::channel");
        assert_eq!(m.resolve("bar").unwrap().join("::"), "crate::foo::bar");
        assert!(m.resolve("Instant").is_none(), "aliased import introduces only the alias");
    }

    #[test]
    fn use_self_in_group() {
        let m = FileModel::parse("use std::fmt::{self, Write};\n");
        assert_eq!(m.resolve("fmt").unwrap().join("::"), "std::fmt::self");
        assert_eq!(m.resolve("Write").unwrap().join("::"), "std::fmt::Write");
    }

    #[test]
    fn fn_bodies_found() {
        let m = FileModel::parse(
            "fn a(x: u8) -> u8 { x }\ntrait T { fn decl(&self); }\nfn b() { let c = |v: u8| v; }\n",
        );
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "decl", "b"]);
        assert!(m.fns[0].body.is_some());
        assert!(m.fns[1].body.is_none());
        assert!(m.fns[2].body.is_some());
    }

    #[test]
    fn cfg_test_bodies_masked() {
        let m = FileModel::parse(
            "fn real() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\n",
        );
        let unwraps: Vec<usize> = m.idents("unwrap").collect();
        assert_eq!(unwraps.len(), 1, "only the non-test unwrap is visible");
    }

    #[test]
    fn match_arms_split_with_struct_patterns() {
        let m = FileModel::parse(
            "fn f(o: Output) {\n  match o {\n    Output::Transmit { frame, phase } => send(frame, phase),\n    Output::Wait { .. } => {}\n    Output::Done => return,\n    _ => {}\n  }\n}\n",
        );
        let body = m.fns[0].body.unwrap();
        let matches = m.matches_in(body);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].arms.len(), 4);
        let pats: Vec<String> = matches[0]
            .arms
            .iter()
            .map(|(p, _)| (p.0..=p.1).map(|i| m.text(i)).collect::<Vec<_>>().join(" "))
            .collect();
        assert!(pats[0].contains("Transmit"));
        assert!(pats[1].contains("Wait"));
        assert!(pats[2].contains("Done"));
        assert_eq!(pats[3], "_");
    }

    #[test]
    fn variant_mentions_in_patterns_and_bodies() {
        let m = FileModel::parse(
            "fn enc(p: Phase) -> u8 { match p { Phase::Setup => 0, Phase::Map => 1 } }\nfn dec(b: u8) -> Option<Phase> { match b { 0 => Some(Phase::Setup), _ => None } }\n",
        );
        let enc_body = m.fns[0].body.unwrap();
        let mentions = m.variant_mentions("Phase", enc_body);
        let names: Vec<&str> = mentions.iter().map(|(_, v)| v.as_str()).collect();
        assert_eq!(names, vec!["Setup", "Map"]);
        // ConnPhase::Setup must NOT count as Phase::Setup.
        let m2 = FileModel::parse("fn g() { let x = ConnPhase::Hello; }\n");
        assert!(m2.variant_mentions("Phase", (0, m2.len() - 1)).is_empty());
    }

    #[test]
    fn nested_match_found() {
        let m = FileModel::parse(
            "fn f(a: u8, b: u8) { match a { 0 => match b { 1 => x(), _ => y() }, _ => z() } }\n",
        );
        let body = m.fns[0].body.unwrap();
        assert_eq!(m.matches_in(body).len(), 2);
    }
}
