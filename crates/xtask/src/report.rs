//! Human and machine-readable rendering of lint outcomes, plus the
//! offline validator for the JSON report CI archives.

use crate::baseline::BaselineOutcome;
use std::fmt::Write as _;

/// The `version` string stamped into every JSON report; bump when the
/// shape changes so downstream tooling can dispatch.
pub const REPORT_VERSION: &str = "msync-lint/1";

/// `file:line:col: [rule] message` per finding, plus a summary and any
/// stale-baseline ratchet hints.
#[must_use]
pub fn human(outcome: &BaselineOutcome) -> String {
    let mut out = String::new();
    for f in &outcome.active {
        let _ = writeln!(out, "{f}");
    }
    if outcome.active.is_empty() {
        let _ = writeln!(
            out,
            "xtask lint: clean ({} baselined finding(s) tolerated)",
            outcome.suppressed
        );
    } else {
        let _ = writeln!(
            out,
            "xtask lint: {} violation(s) ({} baselined finding(s) tolerated)",
            outcome.active.len(),
            outcome.suppressed
        );
    }
    if outcome.deprecation_debt > 0 {
        let _ = writeln!(
            out,
            "note: {} `#[deprecated]` item(s) still exported — migrate callers, then drop the wrappers",
            outcome.deprecation_debt
        );
    }
    for (rule, file, allowed, actual) in &outcome.stale {
        let _ = writeln!(
            out,
            "note: baseline for [{rule}] {file} allows {allowed} but only {actual} remain — run `cargo run -p xtask -- lint --update-baseline` to ratchet down"
        );
    }
    out
}

/// Stable SARIF-lite JSON for tooling: a version tag, findings with
/// spans, baseline counts, stale entries, and the deprecation debt.
/// [`validate_report`] checks exactly this shape.
#[must_use]
pub fn json(outcome: &BaselineOutcome) -> String {
    let mut out = format!("{{\"version\":\"{REPORT_VERSION}\",\"findings\":[");
    for (i, f) in outcome.active.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"end_col\":{},\"message\":\"{}\"}}",
            f.rule,
            escape(&f.file),
            f.line,
            f.col,
            f.end_col,
            escape(&f.message)
        );
    }
    let _ = write!(
        out,
        "],\"suppressed\":{},\"deprecation_debt\":{},\"stale\":[",
        outcome.suppressed, outcome.deprecation_debt
    );
    for (i, (rule, file, allowed, actual)) in outcome.stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"allowed\":{allowed},\"actual\":{actual}}}",
            escape(rule),
            escape(file)
        );
    }
    out.push_str("]}");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Validate a JSON report produced by [`json`]: syntactically valid
/// JSON and structurally a report — version tag, `findings` array whose
/// entries carry `rule`/`file` strings and `line`/`col`/`end_col`
/// numbers plus a `message`, numeric `suppressed` and
/// `deprecation_debt`, and a `stale` array.
///
/// # Errors
/// Returns a human-readable description of the first problem found.
pub fn validate_report(text: &str) -> Result<(), String> {
    let mut p = JsonParser { bytes: text.as_bytes(), pos: 0 };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes after the JSON document at offset {}", p.pos));
    }
    let Json::Obj(top) = value else {
        return Err("top level must be an object".to_owned());
    };
    match top.iter().find(|(k, _)| k == "version").map(|(_, v)| v) {
        Some(Json::Str(v)) if v == REPORT_VERSION => {}
        Some(Json::Str(v)) => {
            return Err(format!("unknown version `{v}` (expected `{REPORT_VERSION}`)"))
        }
        _ => return Err("missing string key `version`".to_owned()),
    }
    for key in ["suppressed", "deprecation_debt"] {
        match top.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
            Some(Json::Num) => {}
            _ => return Err(format!("missing numeric key `{key}`")),
        }
    }
    let Some(Json::Arr(findings)) = top.iter().find(|(k, _)| k == "findings").map(|(_, v)| v)
    else {
        return Err("missing array key `findings`".to_owned());
    };
    for (i, f) in findings.iter().enumerate() {
        let Json::Obj(f) = f else {
            return Err(format!("findings[{i}] is not an object"));
        };
        for key in ["rule", "file", "message"] {
            match f.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
                Some(Json::Str(_)) => {}
                _ => return Err(format!("findings[{i}] missing string key `{key}`")),
            }
        }
        for key in ["line", "col", "end_col"] {
            match f.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
                Some(Json::Num) => {}
                _ => return Err(format!("findings[{i}] missing numeric key `{key}`")),
            }
        }
    }
    match top.iter().find(|(k, _)| k == "stale").map(|(_, v)| v) {
        Some(Json::Arr(_)) => {}
        _ => return Err("missing array key `stale`".to_owned()),
    }
    Ok(())
}

/// A minimal JSON value: just enough to validate report shape.
enum Json {
    Null,
    Bool,
    Num,
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_whitespace) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool),
            Some(b'f') => self.literal("false", Json::Bool),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b.is_ascii_digit() || *b == b'-' => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(|_| Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let esc = self.bytes.get(self.pos + 1).copied();
                    self.pos += 2;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b' | b'f') => out.push(' '),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at offset {}", self.pos))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos - 1)),
                    }
                }
                Some(&b) => {
                    // Copy the raw byte run up to the next quote/escape;
                    // multi-byte UTF-8 passes through untouched.
                    let start = self.pos;
                    while self.bytes.get(self.pos).is_some_and(|b| *b != b'"' && *b != b'\\') {
                        self.pos += 1;
                    }
                    let _ = b;
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8 in string".to_owned())?,
                    );
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            out.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, Rule};

    fn outcome() -> BaselineOutcome {
        BaselineOutcome {
            active: vec![Finding {
                rule: Rule::PanicFreedom,
                file: "a\"b.rs".to_owned(),
                line: 7,
                col: 9,
                end_col: 15,
                message: "line1\nline2".to_owned(),
            }],
            suppressed: 3,
            stale: vec![("lossy-cast".to_owned(), "w.rs".to_owned(), 2, 1)],
            deprecation_debt: 4,
        }
    }

    #[test]
    fn json_escapes_and_structures() {
        let j = json(&outcome());
        assert!(j.contains("\\\"b.rs"));
        assert!(j.contains("line1\\nline2"));
        assert!(j.contains("\"suppressed\":3"));
        assert!(j.contains("\"col\":9"));
        assert!(j.contains("\"end_col\":15"));
        assert!(j.contains("\"deprecation_debt\":4"));
        assert!(j.contains("\"allowed\":2"));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn emitted_json_validates() {
        validate_report(&json(&outcome())).expect("report validates against its own schema");
        let empty = BaselineOutcome::default();
        validate_report(&json(&empty)).expect("empty report validates too");
    }

    #[test]
    fn validator_rejects_malformed_and_misshapen() {
        assert!(validate_report("not json").is_err());
        assert!(validate_report("{\"findings\":[]}").is_err(), "missing version must fail");
        assert!(
            validate_report(
                "{\"version\":\"msync-lint/1\",\"findings\":[{}],\"suppressed\":0,\"deprecation_debt\":0,\"stale\":[]}"
            )
            .is_err(),
            "finding without keys must fail"
        );
        assert!(
            validate_report(&format!("{} trailing", json(&BaselineOutcome::default()))).is_err(),
            "trailing garbage must fail"
        );
    }

    #[test]
    fn human_mentions_counts_and_debt() {
        let text = human(&outcome());
        assert!(text.contains("1 violation(s) (3 baselined"));
        assert!(text.contains("a\"b.rs:7:9: [panic-freedom]"));
        assert!(text.contains("4 `#[deprecated]` item(s)"));
        let clean = BaselineOutcome { suppressed: 5, ..BaselineOutcome::default() };
        assert!(human(&clean).contains("clean (5 baselined"));
        assert!(!human(&clean).contains("#[deprecated]"), "zero debt stays quiet");
    }
}
