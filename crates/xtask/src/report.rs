//! Human and machine-readable rendering of lint outcomes.

use crate::baseline::BaselineOutcome;
use std::fmt::Write as _;

/// `file:line: [rule] message` per finding, plus a summary and any
/// stale-baseline ratchet hints.
#[must_use]
pub fn human(outcome: &BaselineOutcome) -> String {
    let mut out = String::new();
    for f in &outcome.active {
        let _ = writeln!(out, "{f}");
    }
    if outcome.active.is_empty() {
        let _ = writeln!(
            out,
            "xtask lint: clean ({} baselined finding(s) tolerated)",
            outcome.suppressed
        );
    } else {
        let _ = writeln!(
            out,
            "xtask lint: {} violation(s) ({} baselined finding(s) tolerated)",
            outcome.active.len(),
            outcome.suppressed
        );
    }
    for (rule, file, allowed, actual) in &outcome.stale {
        let _ = writeln!(
            out,
            "note: baseline for [{rule}] {file} allows {allowed} but only {actual} remain — run `cargo run -p xtask -- lint --update-baseline` to ratchet down"
        );
    }
    out
}

/// Stable JSON for tooling: findings, counts, stale entries.
#[must_use]
pub fn json(outcome: &BaselineOutcome) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in outcome.active.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            f.rule,
            escape(&f.file),
            f.line,
            escape(&f.message)
        );
    }
    let _ = write!(out, "],\"suppressed\":{},\"stale\":[", outcome.suppressed);
    for (i, (rule, file, allowed, actual)) in outcome.stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"allowed\":{allowed},\"actual\":{actual}}}",
            escape(rule),
            escape(file)
        );
    }
    out.push_str("]}");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, Rule};

    #[test]
    fn json_escapes_and_structures() {
        let outcome = BaselineOutcome {
            active: vec![Finding {
                rule: Rule::PanicFreedom,
                file: "a\"b.rs".to_owned(),
                line: 7,
                message: "line1\nline2".to_owned(),
            }],
            suppressed: 3,
            stale: vec![("lossy-cast".to_owned(), "w.rs".to_owned(), 2, 1)],
        };
        let j = json(&outcome);
        assert!(j.contains("\\\"b.rs"));
        assert!(j.contains("line1\\nline2"));
        assert!(j.contains("\"suppressed\":3"));
        assert!(j.contains("\"allowed\":2"));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn human_mentions_counts() {
        let outcome = BaselineOutcome { active: vec![], suppressed: 5, stale: vec![] };
        assert!(human(&outcome).contains("clean (5 baselined"));
    }
}
