//! A lightweight masked-string Rust source scanner (fallback layer).
//!
//! This was the original engine under the lint rules: it masks the
//! parts of a source file that must never produce matches — comments
//! and string/char/byte literals — with spaces, preserving byte offsets
//! and line structure exactly, so substring scans report `file:line`
//! positions valid for the original file. The rules themselves now run
//! on the token stream from [`crate::tokens`] via [`crate::model`],
//! which additionally sees token boundaries, aliases, and match arms;
//! this module stays as a dependency-light fallback and as an oracle:
//! [`crate::tokens::mask_via_tokens`] must produce byte-identical
//! masking, and `tests/lint_gate.rs` checks that differentially over
//! the whole workspace.

/// Replace comments and string/char literals with spaces, preserving
/// length and newlines, so later scans cannot match inside them.
#[must_use]
pub fn mask_source(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let len = bytes.len();
    let mut i = 0;
    while i < len {
        match bytes[i] {
            b'/' if i + 1 < len && bytes[i + 1] == b'/' => {
                while i < len && bytes[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if i + 1 < len && bytes[i + 1] == b'*' => {
                let mut depth = 1usize;
                out[i] = b' ';
                out[i + 1] = b' ';
                i += 2;
                while i < len && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < len && bytes[i + 1] == b'*' {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < len && bytes[i + 1] == b'/' {
                        depth -= 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'"' => i = mask_plain_string(bytes, &mut out, i),
            b'r' | b'b' if !prev_is_ident(bytes, i) => {
                if let Some(next) = mask_prefixed_literal(bytes, &mut out, i) {
                    i = next;
                } else {
                    i += 1;
                }
            }
            b'\'' => i = mask_char_or_lifetime(src, &mut out, i),
            _ => i += 1,
        }
    }
    // Masking only writes ASCII spaces over existing bytes; multi-byte
    // characters are either fully blanked (inside literals/comments) or
    // untouched, so the result is still valid UTF-8.
    String::from_utf8(out).unwrap_or_default()
}

fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

/// Mask a `"..."` literal starting at `i`; returns the index just past it.
fn mask_plain_string(bytes: &[u8], out: &mut [u8], i: usize) -> usize {
    let len = bytes.len();
    out[i] = b' ';
    let mut j = i + 1;
    while j < len {
        match bytes[j] {
            b'\\' if j + 1 < len => {
                out[j] = b' ';
                if bytes[j + 1] != b'\n' {
                    out[j + 1] = b' ';
                }
                j += 2;
            }
            b'"' => {
                out[j] = b' ';
                return j + 1;
            }
            b'\n' => j += 1,
            _ => {
                out[j] = b' ';
                j += 1;
            }
        }
    }
    j
}

/// Mask `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, or `b'x'` starting
/// at the prefix byte. Returns `None` if this is not actually a literal
/// (e.g. an identifier starting with `r`/`b`).
fn mask_prefixed_literal(bytes: &[u8], out: &mut [u8], i: usize) -> Option<usize> {
    let len = bytes.len();
    let mut j = i;
    let mut raw = false;
    if bytes[j] == b'b' {
        j += 1;
        if j < len && bytes[j] == b'\'' {
            // Byte literal b'x'.
            out[i] = b' ';
            out[j] = b' ';
            let mut k = j + 1;
            while k < len && bytes[k] != b'\'' {
                if bytes[k] == b'\\' {
                    out[k] = b' ';
                    k += 1;
                    if k >= len {
                        break;
                    }
                }
                if k < len && bytes[k] != b'\n' {
                    out[k] = b' ';
                }
                k += 1;
            }
            if k < len {
                out[k] = b' ';
            }
            return Some(k + 1);
        }
    }
    if j < len && bytes[j] == b'r' {
        raw = true;
        j += 1;
    }
    let mut hashes = 0usize;
    while j < len && bytes[j] == b'#' && raw {
        hashes += 1;
        j += 1;
    }
    if j >= len || bytes[j] != b'"' {
        return None;
    }
    if raw {
        // Raw string: no escapes; ends at `"` followed by `hashes` #s.
        for b in out.iter_mut().take(j + 1).skip(i) {
            *b = b' ';
        }
        let mut k = j + 1;
        while k < len {
            if bytes[k] == b'"'
                && bytes[k + 1..].iter().take(hashes).filter(|&&c| c == b'#').count() == hashes
            {
                for b in out.iter_mut().take(k + 1 + hashes).skip(k) {
                    *b = b' ';
                }
                return Some(k + 1 + hashes);
            }
            if bytes[k] != b'\n' {
                out[k] = b' ';
            }
            k += 1;
        }
        Some(k)
    } else {
        for b in out.iter_mut().take(j).skip(i) {
            *b = b' ';
        }
        Some(mask_plain_string(bytes, out, j))
    }
}

/// Distinguish `'a'` / `'\n'` char literals from `'a` lifetimes; mask
/// literals, leave lifetimes alone. Returns the index to resume from.
fn mask_char_or_lifetime(src: &str, out: &mut [u8], i: usize) -> usize {
    let rest = &src[i + 1..];
    let mut chars = rest.char_indices();
    let Some((_, first)) = chars.next() else {
        return i + 1;
    };
    if first == '\\' {
        // Escaped char literal: the byte after the backslash is the
        // escape determinant and is consumed unconditionally, so `'\''`
        // and `'\\'` terminate at their real closing quote instead of
        // stopping early (or skipping past it).
        let bytes = src.as_bytes();
        let mut j = (i + 3).min(bytes.len());
        while j < bytes.len() && bytes[j] != b'\'' {
            if bytes[j] == b'\\' {
                j += 1;
            }
            j += 1;
        }
        for b in out.iter_mut().take((j + 1).min(bytes.len())).skip(i) {
            *b = b' ';
        }
        return j + 1;
    }
    let Some((after_idx, after)) = chars.next() else {
        return i + 1;
    };
    if after == '\'' && first != '\'' {
        // Plain char literal 'x' (possibly multi-byte x).
        let end = i + 1 + after_idx + 1;
        for b in out.iter_mut().take(end).skip(i) {
            *b = b' ';
        }
        return end;
    }
    // Lifetime or label: leave as-is.
    i + 1
}

/// Blank every `#[cfg(test)]`-gated item body in already-masked source.
///
/// The heuristic covers the universal idiom: `#[cfg(test)]` followed by
/// an item whose body is the next `{ ... }` block. Attribute and item
/// header stay visible (they contain nothing the rules match on); the
/// body is replaced by spaces.
#[must_use]
pub fn blank_test_blocks(masked: &str) -> String {
    let mut out = masked.as_bytes().to_vec();
    let bytes = masked.as_bytes();
    let needle = b"#[cfg(test)]";
    let mut from = 0usize;
    while let Some(pos) = find(bytes, needle, from) {
        from = pos + needle.len();
        // Find the opening brace of the gated item.
        let Some(open) = bytes[from..].iter().position(|&b| b == b'{').map(|o| from + o) else {
            break;
        };
        let mut depth = 0usize;
        let mut j = open;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let end = (j + 1).min(bytes.len());
        for b in out.iter_mut().take(end).skip(open) {
            if *b != b'\n' {
                *b = b' ';
            }
        }
        from = end;
    }
    String::from_utf8(out).unwrap_or_default()
}

/// Byte-substring find starting at `from`.
#[must_use]
pub fn find(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if needle.is_empty() || from >= haystack.len() {
        return None;
    }
    haystack[from..].windows(needle.len()).position(|w| w == needle).map(|p| p + from)
}

/// 1-based line number of a byte offset.
#[must_use]
pub fn line_of(src: &str, offset: usize) -> u32 {
    let upto = &src.as_bytes()[..offset.min(src.len())];
    let mut line: u32 = 1;
    for &b in upto {
        if b == b'\n' {
            line = line.saturating_add(1);
        }
    }
    line
}

/// Iterate identifier-boundary occurrences of `word` in `text`,
/// yielding byte offsets.
pub fn word_occurrences<'a>(text: &'a str, word: &'a str) -> impl Iterator<Item = usize> + 'a {
    let bytes = text.as_bytes();
    let wlen = word.len();
    let mut from = 0usize;
    std::iter::from_fn(move || {
        while let Some(pos) = find(bytes, word.as_bytes(), from) {
            from = pos + 1;
            let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
            let after_ok = pos + wlen >= bytes.len() || !is_ident_byte(bytes[pos + wlen]);
            if before_ok && after_ok {
                return Some(pos);
            }
        }
        None
    })
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// First non-whitespace byte at or after `from`.
#[must_use]
pub fn next_nonspace(text: &str, from: usize) -> Option<(usize, u8)> {
    text.as_bytes()
        .iter()
        .enumerate()
        .skip(from)
        .find(|(_, b)| !b.is_ascii_whitespace())
        .map(|(i, b)| (i, *b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let a = \"panic!()\"; // unwrap()\nlet b = 1; /* expect( */\n";
        let m = mask_source(src);
        assert_eq!(m.len(), src.len());
        assert!(!m.contains("panic!"));
        assert!(!m.contains("unwrap"));
        assert!(!m.contains("expect"));
        assert!(m.contains("let a ="));
        assert_eq!(m.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn masks_raw_and_byte_strings() {
        let src = r###"let s = r#"as u8 "quoted" inside"#; let t = b"unwrap()"; let c = b'x';"###;
        let m = mask_source(src);
        assert!(!m.contains("as u8"));
        assert!(!m.contains("unwrap"));
        assert!(!m.contains('x'));
        assert!(m.contains("let s ="));
        assert!(m.contains("let t ="));
    }

    #[test]
    fn lifetimes_survive_char_literals_masked() {
        let src = "fn f<'a>(x: &'a str) -> char { 'y' }";
        let m = mask_source(src);
        assert!(m.contains("<'a>"));
        assert!(m.contains("&'a str"));
        assert!(!m.contains("'y'"));
    }

    #[test]
    fn escaped_chars_masked() {
        let src = "let nl = '\\n'; let q = '\\''; let u = unwrap_target();";
        let m = mask_source(src);
        assert!(!m.contains("\\n"));
        assert!(m.contains("unwrap_target"));
    }

    #[test]
    fn escaped_quote_and_backslash_char_literals_end_at_closing_quote() {
        // `'\''`: the escaped quote is the determinant, the third quote
        // closes the literal — nothing after it may be masked.
        let m = mask_source("let q = '\\''; q.unwrap();");
        assert!(!m.contains('\''), "closing quote left behind: {m:?}");
        assert!(m.contains(".unwrap()"), "code after literal masked: {m:?}");

        // `'\\'`: the second backslash is the determinant; the old
        // scanner skipped past the closing quote and swallowed code.
        let m = mask_source("let b = '\\\\'; b.unwrap();");
        assert!(!m.contains('\''), "closing quote left behind: {m:?}");
        assert!(m.contains(".unwrap()"), "code after literal masked: {m:?}");

        // Multi-char escapes (`'\x7f'`, `'\u{1F600}'`) still scan to
        // their real closing quote.
        let m = mask_source("let x = '\\x7f'; let u = '\\u{41}'; done()");
        assert!(!m.contains('\''), "{m:?}");
        assert!(m.contains("done()"));
    }

    #[test]
    fn raw_strings_with_many_hashes_masked() {
        let src = "let s = r##\"has \"# inside\"##; let t = br###\"x\"###; keep()";
        let m = mask_source(src);
        assert!(!m.contains("inside"), "{m:?}");
        assert!(!m.contains('"'), "{m:?}");
        assert!(m.contains("keep()"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner unwrap() */ still comment */ code()";
        let m = mask_source(src);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("code()"));
    }

    #[test]
    fn blanks_cfg_test_mod() {
        let src = "fn real() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn t() { y.expect(\"\"); }\n}\nfn after() {}\n";
        let m = blank_test_blocks(&mask_source(src));
        assert!(m.contains("unwrap"), "non-test code stays");
        assert!(!m.contains("expect"), "test code blanked");
        assert!(m.contains("fn after"));
    }

    #[test]
    fn word_boundaries_respected() {
        let text = "a.unwrap() b.unwrap_or(c) my_unwrap() unwrap";
        let hits: Vec<usize> = word_occurrences(text, "unwrap").collect();
        assert_eq!(hits.len(), 2, "unwrap() and bare unwrap, not unwrap_or/my_unwrap: {hits:?}");
    }

    #[test]
    fn line_numbers() {
        let src = "a\nb\nc";
        assert_eq!(line_of(src, 0), 1);
        assert_eq!(line_of(src, 2), 2);
        assert_eq!(line_of(src, 4), 3);
    }
}
