//! `cargo run -p xtask -- lint` — the workspace static-analysis gate —
//! plus the offline validators: `check-journal FILE` for trace
//! journals, `check-metrics FILE` for Prometheus expositions, and
//! `check-lint-report FILE` for the JSON lint report CI archives.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::{find_workspace_root, gate, lint_workspace, Baseline, LintConfig};

const USAGE: &str = "\
usage: cargo run -p xtask -- lint [options]
       cargo run -p xtask -- check-journal <FILE>
       cargo run -p xtask -- check-metrics <FILE> [--require <prefix>]...
       cargo run -p xtask -- check-lint-report <FILE>

Static-analysis gate for the msync workspace: a token-aware engine
(lexer + import/function/match model) runs per-file rules and
cross-file protocol passes. Enforces:
  crate-headers    #![forbid(unsafe_code)] + #![deny(missing_docs)] in lib crates
  panic-freedom    no unwrap()/expect(/panic!/todo!/unimplemented! in
                   protocol-critical non-test code (hashes, protocol,
                   rsync, recon, core, net)
  lossy-cast       no narrowing `as` casts in wire-format modules
  determinism      no ambient clock/RNG inside protocol logic, including
                   through `use ... as` aliases
  hermeticity      workspace crates use first-party path deps only
  channel-discipline
                   no bare recv() in protocol-critical code; receives
                   must be bounded (recv_timeout / try_recv); in socket
                   crates (net) every read-family call additionally
                   requires a preceding set_read_timeout deadline
  clock-discipline no Instant::now / SystemTime::now outside crates/trace
                   (alias-aware); time flows through msync_trace::Clock
                   so traced runs replay deterministically
  wire-schema      frame tags (enum Phase) are declared once, in the
                   registry module, and every encode/decode match over
                   them covers the identical variant set — a one-sided
                   arm is a lint error, not a runtime desync
  charge-point     every transport function (crates/net, crates/protocol)
                   pairs its TrafficStats charge with the FrameSend/
                   FrameRecv trace event, so journal == stats by
                   construction
  machine-discipline
                   every drive loop polling a sans-IO machine handles
                   all Output::{Transmit,Attribute,Wait,Done} variants,
                   and the engine modules (crates/core/src/engine/) stay
                   effect-pure: no thread::spawn / blocking recv /
                   read-family calls / sleep
  apply-discipline no bare fs::write( / File::create( on the sync-apply
                   paths (crates/cli, crates/net); materialized files go
                   through msync_core::AtomicApplier / atomic_write_file
                   so a crash never leaves a torn replica
  alloc-discipline no .to_vec()/.clone() on frame/payload values in the
                   wire modules (crates/protocol, crates/net,
                   crates/core/src/engine); frames move as refcounted
                   FrameBuf shares, and the only sanctioned copy is the
                   allowlisted fault::copy_for_mutation

options:
  --format <human|json>  output format (default: human; json is the
                         SARIF-lite report ci.sh archives as LINT_REPORT.json)
  --json                 shorthand for --format json
  --update-baseline      rewrite lint-baseline.toml to cover current findings
  --root <dir>           workspace root (default: discovered from cwd)

check-journal validates a --trace-out JSONL journal offline (no jq
needed): every line must parse under the current schema with monotone t_us.
check-metrics validates a Prometheus text exposition (a `msync stats`
scrape or --metrics-out file) offline, no promtool needed: well-formed
`# TYPE` lines declared once and before their samples, valid metric and
label syntax, numeric values, and no duplicate series. Each
`--require <prefix>` additionally demands at least one declared family
whose name starts with the prefix (CI gates the live scrape on
`msync_frame_pool_` this way), failing otherwise.
check-lint-report validates a `lint --format json` report: valid JSON
with the msync-lint/1 shape (findings with rule/file/line/col spans).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(err) => {
            eprintln!("xtask: {err}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        eprint!("{USAGE}");
        return Ok(ExitCode::from(2));
    };
    if cmd == "check-journal" {
        let path = it.next().ok_or("check-journal needs a journal file path")?;
        if it.next().is_some() {
            return Err(format!("check-journal takes exactly one argument\n\n{USAGE}"));
        }
        return check_journal(std::path::Path::new(path));
    }
    if cmd == "check-metrics" {
        let mut path: Option<&String> = None;
        let mut required: Vec<String> = Vec::new();
        while let Some(arg) = it.next() {
            if arg == "--require" {
                required.push(it.next().ok_or("--require needs a metric-name prefix")?.clone());
            } else if path.is_none() {
                path = Some(arg);
            } else {
                return Err(format!(
                    "check-metrics takes one file plus --require options\n\n{USAGE}"
                ));
            }
        }
        let path = path.ok_or("check-metrics needs an exposition file path")?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        return match xtask::metrics::validate_metrics(&text) {
            Ok(summary) => {
                let missing: Vec<&String> = required
                    .iter()
                    .filter(|p| xtask::metrics::families_with_prefix(&text, p) == 0)
                    .collect();
                if missing.is_empty() {
                    println!(
                        "{path}: {} series in {} families OK",
                        summary.series, summary.families
                    );
                    Ok(ExitCode::SUCCESS)
                } else {
                    for prefix in &missing {
                        eprintln!("{path}: no metric family matches required prefix `{prefix}`");
                    }
                    eprintln!("{path}: {} missing required famil(y/ies)", missing.len());
                    Ok(ExitCode::FAILURE)
                }
            }
            Err(errors) => {
                for err in &errors {
                    eprintln!("{path}: {err}");
                }
                eprintln!("{path}: {} violation(s)", errors.len());
                Ok(ExitCode::FAILURE)
            }
        };
    }
    if cmd == "check-lint-report" {
        let path = it.next().ok_or("check-lint-report needs a report file path")?;
        if it.next().is_some() {
            return Err(format!("check-lint-report takes exactly one argument\n\n{USAGE}"));
        }
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        return match xtask::report::validate_report(&text) {
            Ok(()) => {
                println!("{path}: valid {} report", xtask::report::REPORT_VERSION);
                Ok(ExitCode::SUCCESS)
            }
            Err(err) => {
                eprintln!("{path}: {err}");
                Ok(ExitCode::FAILURE)
            }
        };
    }
    if cmd != "lint" {
        eprint!("unknown command `{cmd}`\n\n{USAGE}");
        return Ok(ExitCode::from(2));
    }
    let mut json = false;
    let mut update_baseline = false;
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("human") => json = false,
                Some(other) => {
                    return Err(format!("unknown format `{other}` (expected human or json)"))
                }
                None => return Err("--format needs a value (human or json)".to_owned()),
            },
            "--update-baseline" => update_baseline = true,
            "--root" => {
                root = Some(PathBuf::from(it.next().ok_or("--root needs a value")?));
            }
            other => return Err(format!("unknown option `{other}`\n\n{USAGE}")),
        }
    }
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let root = match root {
        Some(r) => r,
        None => find_workspace_root(&cwd)
            .ok_or("no workspace root found above the current directory")?,
    };
    let cfg = LintConfig::msync();

    if update_baseline {
        let findings = lint_workspace(&root, &cfg).map_err(|e| e.to_string())?;
        let baseline = Baseline::covering(&findings);
        let path = root.join("lint-baseline.toml");
        std::fs::write(&path, baseline.serialize()).map_err(|e| e.to_string())?;
        eprintln!(
            "wrote {} covering {} finding(s) in {} (rule, file) group(s)",
            path.display(),
            findings.len(),
            baseline.allowed.len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let outcome = gate(&root, &cfg).map_err(|e| e.to_string())?;
    if json {
        println!("{}", xtask::report::json(&outcome));
    } else {
        print!("{}", xtask::report::human(&outcome));
    }
    Ok(if outcome.active.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

/// Validate a `--trace-out` JSONL journal: every non-empty line must parse
/// under the current schema, declare the matching `v`, and carry a
/// non-decreasing `t_us`.
fn check_journal(path: &std::path::Path) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut lines = 0usize;
    let mut bad = 0usize;
    let mut last_t_us = 0u64;
    for (idx, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        lines += 1;
        match msync_trace::parse_line(line) {
            Ok(parsed) => {
                if parsed.v != u64::from(msync_trace::SCHEMA_VERSION) {
                    eprintln!(
                        "{}:{}: schema version {} (expected {})",
                        path.display(),
                        idx + 1,
                        parsed.v,
                        msync_trace::SCHEMA_VERSION
                    );
                    bad += 1;
                } else if parsed.t_us < last_t_us {
                    eprintln!(
                        "{}:{}: t_us {} goes backwards (previous {last_t_us})",
                        path.display(),
                        idx + 1,
                        parsed.t_us
                    );
                    bad += 1;
                } else {
                    last_t_us = parsed.t_us;
                }
            }
            Err(err) => {
                eprintln!("{}:{}: {err}", path.display(), idx + 1);
                bad += 1;
            }
        }
    }
    if bad == 0 {
        println!("{}: {lines} journal line(s) OK", path.display());
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("{}: {bad} of {lines} line(s) invalid", path.display());
        Ok(ExitCode::FAILURE)
    }
}
