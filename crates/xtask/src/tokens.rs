//! A hand-rolled Rust lexer with exact spans.
//!
//! The masked-string scanner ([`crate::scanner`]) can answer "does this
//! word appear outside strings and comments", but it cannot see *token
//! structure*: an aliased import (`use std::time::Instant as I`), a call
//! split across lines with a comment between name and parenthesis, or a
//! match arm pattern are all invisible to substring scans. This lexer
//! produces the real token stream — identifiers, literals (including
//! raw/byte strings), punctuation, comments — each carrying its byte
//! span and line/column, so rules and the cross-file passes in
//! [`crate::passes`] operate on structure instead of text.
//!
//! Fidelity contract (checked by the round-trip tests in
//! `tests/lint_gate.rs`): the token texts tile the input exactly —
//! concatenating `token.text(src)` over all tokens reproduces `src`
//! byte-for-byte, with no gaps and no overlaps.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// ...` including doc comments (`///`, `//!`), up to the newline.
    LineComment,
    /// `/* ... */`, nested, including doc block comments.
    BlockComment,
    /// Identifier or keyword, including raw identifiers (`r#match`).
    Ident,
    /// `'a`, `'static`, loop labels.
    Lifetime,
    /// `'x'`, `'\n'`, `'\''`.
    CharLit,
    /// `b'x'`.
    ByteLit,
    /// `"..."`.
    StrLit,
    /// `r"..."` / `r#"..."#` with any number of hashes.
    RawStrLit,
    /// `b"..."`.
    ByteStrLit,
    /// `br"..."` / `br#"..."#`.
    RawByteStrLit,
    /// Integer or float literal, with suffix if attached (`1_000u64`).
    NumberLit,
    /// A single punctuation byte (`{`, `=`, `>`, ...). Multi-byte
    /// operators are consecutive `Punct` tokens with adjacent spans.
    Punct,
    /// Anything the lexer does not recognize (kept for round-trip).
    Unknown,
}

/// One token: classification plus exact location in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based byte column of `start` within its line.
    pub col: u32,
}

impl Token {
    /// The token's text within its source file.
    #[must_use]
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether this token is code (not whitespace or a comment).
    #[must_use]
    pub fn is_code(&self) -> bool {
        !matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }

    /// Whether this token is any string/char/byte literal.
    #[must_use]
    pub fn is_literal(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::CharLit
                | TokenKind::ByteLit
                | TokenKind::StrLit
                | TokenKind::RawStrLit
                | TokenKind::ByteStrLit
                | TokenKind::RawByteStrLit
                | TokenKind::NumberLit
        )
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into a complete token stream. Never fails: unrecognized
/// bytes become [`TokenKind::Unknown`] tokens so the stream always
/// tiles the input.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { src: src.as_bytes(), pos: 0, line: 1, col: 1, out: Vec::new() }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always make progress");
            self.push(kind, start);
        }
        self.out
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        let (line, col) = (self.line, self.col);
        for &b in &self.src[start..self.pos] {
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        self.out.push(Token { kind, start, end: self.pos, line, col });
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn next_kind(&mut self) -> TokenKind {
        let b = self.src[self.pos];
        match b {
            _ if b.is_ascii_whitespace() => {
                while self.peek(0).is_some_and(|c| c.is_ascii_whitespace()) {
                    self.pos += 1;
                }
                TokenKind::Whitespace
            }
            b'/' if self.peek(1) == Some(b'/') => {
                while self.peek(0).is_some_and(|c| c != b'\n') {
                    self.pos += 1;
                }
                TokenKind::LineComment
            }
            b'/' if self.peek(1) == Some(b'*') => {
                self.pos += 2;
                let mut depth = 1usize;
                while depth > 0 && self.pos < self.src.len() {
                    if self.peek(0) == Some(b'/') && self.peek(1) == Some(b'*') {
                        depth += 1;
                        self.pos += 2;
                    } else if self.peek(0) == Some(b'*') && self.peek(1) == Some(b'/') {
                        depth -= 1;
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => self.lex_string(),
            b'\'' => self.lex_char_or_lifetime(),
            b'r' | b'b' => self.lex_prefixed(),
            _ if b.is_ascii_digit() => self.lex_number(),
            _ if is_ident_start(b) => self.lex_ident(),
            _ => {
                self.pos += 1;
                TokenKind::Punct
            }
        }
    }

    /// `"..."` with escapes; the opening quote is at `self.pos`.
    fn lex_string(&mut self) -> TokenKind {
        self.pos += 1;
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.pos += 2.min(self.src.len() - self.pos),
                b'"' => {
                    self.pos += 1;
                    return TokenKind::StrLit;
                }
                _ => self.pos += 1,
            }
        }
        TokenKind::StrLit // unterminated; consume to EOF
    }

    /// `'x'`, `'\n'`, `'\''` char literals vs `'a` lifetimes. The
    /// disambiguation rule is the compiler's: a quote followed by an
    /// escape is a char; a quote, one character, and a closing quote is
    /// a char; otherwise an identifier-start begins a lifetime.
    fn lex_char_or_lifetime(&mut self) -> TokenKind {
        let after = self.peek(1);
        if after == Some(b'\\') {
            // Escaped char literal: the byte after the backslash is the
            // escape determinant ('\\', '\'', 'n', 'x', 'u', ...) and is
            // consumed unconditionally so `'\\'` and `'\''` terminate at
            // their real closing quote.
            self.pos += 3.min(self.src.len() - self.pos);
            while let Some(b) = self.peek(0) {
                match b {
                    b'\\' => self.pos += 2.min(self.src.len() - self.pos),
                    b'\'' => {
                        self.pos += 1;
                        return TokenKind::CharLit;
                    }
                    _ => self.pos += 1,
                }
            }
            return TokenKind::CharLit;
        }
        let Some(first) = after else {
            self.pos += 1;
            return TokenKind::Unknown;
        };
        // Width of the (possibly multi-byte) character after the quote.
        let width = utf8_width(first);
        if self.peek(1 + width) == Some(b'\'') && first != b'\'' {
            self.pos += 1 + width + 1;
            return TokenKind::CharLit;
        }
        if is_ident_start(first) {
            self.pos += 1;
            while self.peek(0).is_some_and(is_ident_continue) {
                self.pos += 1;
            }
            return TokenKind::Lifetime;
        }
        self.pos += 1;
        TokenKind::Unknown
    }

    /// Literals starting with `r` or `b`: raw strings, byte strings,
    /// byte literals, raw identifiers — or a plain identifier.
    fn lex_prefixed(&mut self) -> TokenKind {
        let b0 = self.src[self.pos];
        let mut j = 1usize;
        let mut byte = false;
        let mut raw = false;
        if b0 == b'b' {
            byte = true;
            if self.peek(j) == Some(b'r') {
                raw = true;
                j += 1;
            }
        } else {
            raw = true;
        }
        if raw {
            let mut hashes = 0usize;
            while self.peek(j + hashes) == Some(b'#') {
                hashes += 1;
            }
            if self.peek(j + hashes) == Some(b'"') {
                self.pos += j + hashes + 1;
                return self.lex_raw_body(hashes, byte);
            }
            // `r#ident` raw identifier (only for bare `r`, one hash).
            if !byte && hashes == 1 && self.peek(j + 1).is_some_and(is_ident_start) {
                self.pos += 2;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.pos += 1;
                }
                return TokenKind::Ident;
            }
        }
        if byte && !raw {
            if self.peek(1) == Some(b'"') {
                self.pos += 1;
                self.lex_string();
                return TokenKind::ByteStrLit;
            }
            if self.peek(1) == Some(b'\'') {
                self.pos += 1;
                self.lex_char_or_lifetime();
                return TokenKind::ByteLit;
            }
        }
        self.lex_ident()
    }

    /// Body of a raw (byte) string after the opening quote: ends at a
    /// quote followed by exactly `hashes` contiguous `#` bytes.
    fn lex_raw_body(&mut self, hashes: usize, byte: bool) -> TokenKind {
        while let Some(b) = self.peek(0) {
            if b == b'"' && (1..=hashes).all(|k| self.peek(k) == Some(b'#')) {
                self.pos += 1 + hashes;
                return if byte { TokenKind::RawByteStrLit } else { TokenKind::RawStrLit };
            }
            self.pos += 1;
        }
        if byte {
            TokenKind::RawByteStrLit
        } else {
            TokenKind::RawStrLit
        }
    }

    fn lex_number(&mut self) -> TokenKind {
        // Digits, underscores, hex/bin/oct bodies, and type suffixes all
        // fall under "alphanumeric or underscore".
        while self.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
            self.pos += 1;
        }
        // A fractional part only if the dot is followed by a digit, so
        // `0..10` stays Number / Punct / Punct / Number.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
            while self.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
                self.pos += 1;
            }
        }
        TokenKind::NumberLit
    }

    fn lex_ident(&mut self) -> TokenKind {
        self.pos += 1;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        TokenKind::Ident
    }
}

/// Reproduce the masking semantics of [`crate::scanner::mask_source`]
/// from the token stream: blank every comment and string/char/byte
/// literal byte with a space (newlines preserved so line numbers
/// survive), leave all other bytes untouched. The differential test in
/// `tests/lint_gate.rs` holds the two maskers byte-identical over the
/// entire workspace, so the scanner stays a trustworthy fallback.
#[must_use]
pub fn mask_via_tokens(src: &str) -> String {
    let mut out: Vec<u8> = src.as_bytes().to_vec();
    for t in lex(src) {
        let blank = matches!(
            t.kind,
            TokenKind::LineComment
                | TokenKind::BlockComment
                | TokenKind::CharLit
                | TokenKind::ByteLit
                | TokenKind::StrLit
                | TokenKind::RawStrLit
                | TokenKind::ByteStrLit
                | TokenKind::RawByteStrLit
        );
        if blank {
            for b in &mut out[t.start..t.end] {
                if *b != b'\n' {
                    *b = b' ';
                }
            }
        }
    }
    String::from_utf8(out).unwrap_or_default()
}

/// Byte width of a UTF-8 character from its first byte.
fn utf8_width(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        b if b >= 0xC0 => 2,
        _ => 1, // continuation byte: malformed input, advance one byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text(src))).collect()
    }

    fn roundtrip(src: &str) {
        let tokens = lex(src);
        let mut rebuilt = String::new();
        let mut pos = 0usize;
        for t in &tokens {
            assert_eq!(t.start, pos, "gap or overlap at byte {pos} in {src:?}");
            rebuilt.push_str(t.text(src));
            pos = t.end;
        }
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn mask_via_tokens_matches_scanner_on_edge_cases() {
        let corpus = [
            "let q = '\\''; q.unwrap();",
            "let b = '\\\\'; b.unwrap();",
            "let s = r##\"has \"# inside\"##; keep()",
            "let t = br###\"bytes \"## too\"###; keep()",
            "let lt: &'static str = \"x\"; fn f<'a>(v: &'a u8) {}",
            "let c = b'\\''; let d = b'\\\\'; tail()",
            "// comment with 'quote and \"string\n/* block\nspans lines */ x",
            "let n = 0xff_u32; let r = 0..10; let f = 1.5e3;",
            "let multi = '\u{e9}'; let emoji = \"\u{1F600}\"; after()",
            "let esc = \"a\\\"b\\\\c\"; let nl = \"line\\\ncontinued\";",
        ];
        for src in corpus {
            assert_eq!(
                mask_via_tokens(src),
                crate::scanner::mask_source(src),
                "maskers diverge on {src:?}"
            );
        }
    }

    #[test]
    fn mask_via_tokens_preserves_length_lines_and_code() {
        let src = "let s = \"payload\"; // tail\nuse std::io;\n";
        let m = mask_via_tokens(src);
        assert_eq!(m.len(), src.len());
        assert_eq!(m.matches('\n').count(), src.matches('\n').count());
        assert!(!m.contains("payload"));
        assert!(!m.contains("tail"));
        assert!(m.contains("use std::io;"));
    }

    #[test]
    fn idents_keywords_punct() {
        let got = texts("fn f(x: u8) -> u8 { x }");
        assert!(got.contains(&(TokenKind::Ident, "fn")));
        assert!(got.contains(&(TokenKind::Ident, "u8")));
        assert!(got.contains(&(TokenKind::Punct, "{")));
        roundtrip("fn f(x: u8) -> u8 { x }");
    }

    #[test]
    fn comments_lex_as_comments() {
        let src = "// line\n/* block /* nested */ */ x /// doc\n";
        let got = texts(src);
        assert_eq!(got[0], (TokenKind::LineComment, "// line"));
        assert!(got.contains(&(TokenKind::BlockComment, "/* block /* nested */ */")));
        assert!(got.contains(&(TokenKind::Ident, "x")));
        roundtrip(src);
    }

    #[test]
    fn string_variants() {
        let src = r####"let a = "s"; let b = r#"raw "q" body"#; let c = b"bytes"; let d = br##"rb"##;"####;
        let got = texts(src);
        assert!(got.contains(&(TokenKind::StrLit, "\"s\"")));
        assert!(got.contains(&(TokenKind::RawStrLit, r###"r#"raw "q" body"#"###)));
        assert!(got.contains(&(TokenKind::ByteStrLit, "b\"bytes\"")));
        assert!(got.contains(&(TokenKind::RawByteStrLit, r###"br##"rb"##"###)));
        roundtrip(src);
    }

    #[test]
    fn raw_string_multi_hash_with_inner_terminator_lookalike() {
        // `"#` inside an `r##"..."##` string must not terminate it.
        let src = "r##\"contains \"# inner\"## tail";
        let got = texts(src);
        assert_eq!(got[0], (TokenKind::RawStrLit, "r##\"contains \"# inner\"##"));
        assert!(got.contains(&(TokenKind::Ident, "tail")));
        roundtrip(src);
    }

    #[test]
    fn chars_lifetimes_and_escaped_quote() {
        let src = "fn f<'a>(x: &'a str) { let c = 'y'; let q = '\\''; let n = '\\n'; }";
        let got = texts(src);
        assert!(got.contains(&(TokenKind::Lifetime, "'a")));
        assert!(got.contains(&(TokenKind::CharLit, "'y'")));
        assert!(got.contains(&(TokenKind::CharLit, "'\\''")));
        assert!(got.contains(&(TokenKind::CharLit, "'\\n'")));
        let src2 = "let b = '\\\\'; done()";
        assert!(texts(src2).contains(&(TokenKind::CharLit, "'\\\\'")));
        assert!(texts(src2).contains(&(TokenKind::Ident, "done")));
        roundtrip(src);
    }

    #[test]
    fn multibyte_char_literal_and_static_lifetime() {
        let src = "let c = 'é'; let s: &'static str = \"x\";";
        let got = texts(src);
        assert!(got.contains(&(TokenKind::CharLit, "'é'")));
        assert!(got.contains(&(TokenKind::Lifetime, "'static")));
        roundtrip(src);
    }

    #[test]
    fn raw_identifier() {
        let got = texts("let r#match = 1;");
        assert!(got.contains(&(TokenKind::Ident, "r#match")));
    }

    #[test]
    fn numbers_and_ranges() {
        let src = "let a = 1_000u64; let b = 0x7F; let f = 1.5; for i in 0..10 {}";
        let got = texts(src);
        assert!(got.contains(&(TokenKind::NumberLit, "1_000u64")));
        assert!(got.contains(&(TokenKind::NumberLit, "0x7F")));
        assert!(got.contains(&(TokenKind::NumberLit, "1.5")));
        assert!(got.contains(&(TokenKind::NumberLit, "0")));
        assert!(got.contains(&(TokenKind::NumberLit, "10")));
        roundtrip(src);
    }

    #[test]
    fn line_and_column_positions() {
        let src = "ab\n  cd 'x'\n";
        let tokens: Vec<Token> = lex(src).into_iter().filter(Token::is_code).collect();
        assert_eq!((tokens[0].line, tokens[0].col), (1, 1));
        assert_eq!((tokens[1].line, tokens[1].col), (2, 3));
        assert_eq!((tokens[2].line, tokens[2].col), (2, 6));
    }

    #[test]
    fn unterminated_inputs_still_tile() {
        for src in ["\"open", "r#\"open", "/* open", "'\\", "b'", "let x = 'a"] {
            roundtrip(src);
        }
    }
}
