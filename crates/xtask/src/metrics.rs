//! Offline validator for Prometheus text expositions (`check-metrics`).
//!
//! The daemon's `stats` admin verb and `--metrics-out` file both emit
//! the classic text exposition format, and CI scrapes a live daemon to
//! prove it. Nothing in the container can parse that format, so this
//! module is the hand-rolled equivalent of `promtool check metrics`,
//! restricted to what the workspace actually emits:
//!
//! * comment lines are `# TYPE name kind` (kind one of `counter`,
//!   `gauge`, `histogram`, `summary`, `untyped`) or `# HELP name ...`;
//! * a family's `# TYPE` appears before its first sample and only once;
//! * sample lines are `name value` or `name{key="value",...} value`
//!   with valid metric/label identifiers and a numeric value;
//! * no series (name plus label set) appears twice;
//! * every sample belongs to a declared family (histogram samples via
//!   their `_bucket` / `_sum` / `_count` suffixes).

use std::collections::{BTreeMap, BTreeSet};

/// What a clean validation run saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSummary {
    /// Number of `# TYPE`-declared metric families.
    pub families: usize,
    /// Number of distinct sample series.
    pub series: usize,
}

const TYPE_KINDS: [&str; 5] = ["counter", "gauge", "histogram", "summary", "untyped"];

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Split a sample line into `(name, labels-with-braces, value)`.
/// Labels are returned verbatim (sorted order is the renderer's job;
/// the duplicate-series check compares them as written).
fn split_sample(line: &str) -> Result<(&str, &str, &str), String> {
    let name_end = line
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
        .unwrap_or(line.len());
    let (name, rest) = line.split_at(name_end);
    if name.is_empty() || !valid_metric_name(name) {
        return Err("sample line does not start with a metric name".to_owned());
    }
    if let Some(after_brace) = rest.strip_prefix('{') {
        let close =
            after_brace.find('}').ok_or_else(|| "unterminated `{` in label set".to_owned())?;
        let labels = &after_brace[..close];
        check_labels(labels)?;
        let value = after_brace[close + 1..]
            .strip_prefix(' ')
            .ok_or_else(|| "expected a space between label set and value".to_owned())?;
        Ok((name, &rest[..close + 2], value))
    } else {
        let value = rest
            .strip_prefix(' ')
            .ok_or_else(|| "expected a space between metric name and value".to_owned())?;
        Ok((name, "", value))
    }
}

/// Validate the inside of a `{...}` label set: `key="value"` pairs,
/// comma-separated, no duplicate keys, no unescaped quotes in values.
fn check_labels(labels: &str) -> Result<(), String> {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut rest = labels;
    loop {
        let eq = rest.find('=').ok_or_else(|| format!("label pair `{rest}` has no `=`"))?;
        let key = &rest[..eq];
        if !valid_label_name(key) {
            return Err(format!("invalid label name `{key}`"));
        }
        if !seen.insert(key) {
            return Err(format!("duplicate label `{key}`"));
        }
        let after_eq = &rest[eq + 1..];
        let quoted = after_eq
            .strip_prefix('"')
            .ok_or_else(|| format!("label `{key}` value is not quoted"))?;
        // The workspace never emits escapes, so the strict subset bans
        // them: the first quote closes the value.
        let close =
            quoted.find('"').ok_or_else(|| format!("label `{key}` value is unterminated"))?;
        if quoted[..close].contains('\\') {
            return Err(format!("label `{key}` value contains an escape"));
        }
        rest = &quoted[close + 1..];
        if rest.is_empty() {
            return Ok(());
        }
        rest = rest
            .strip_prefix(',')
            .ok_or_else(|| format!("expected `,` or end after label `{key}`"))?;
    }
}

fn valid_value(value: &str) -> bool {
    !value.is_empty()
        && !value.contains(' ')
        && (value.parse::<f64>().is_ok() || matches!(value, "+Inf" | "-Inf" | "NaN"))
}

/// Resolve a sample name to its declared family: itself, or — for
/// `_bucket` / `_sum` / `_count` samples of a declared histogram — the
/// base name.
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).is_some_and(|k| k == "histogram") {
                return base;
            }
        }
    }
    name
}

/// Count the `# TYPE`-declared metric families whose name starts with
/// `prefix` — the `check-metrics --require` gate, which CI uses to
/// prove a live scrape actually exposes a family group (e.g. the
/// `msync_frame_pool_` buffer-pool block) rather than merely parsing.
#[must_use]
pub fn families_with_prefix(text: &str, prefix: &str) -> usize {
    text.lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|decl| decl.split(' ').next())
        .filter(|name| name.starts_with(prefix))
        .count()
}

/// Validate a full exposition. Returns the family/series counts on
/// success, or every violation as a `line N: message` string.
///
/// # Errors
/// One entry per malformed line, duplicate declaration, duplicate
/// series, or sample without a declared family.
pub fn validate_metrics(text: &str) -> Result<MetricsSummary, Vec<String>> {
    let mut errors: Vec<String> = Vec::new();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut sampled: BTreeSet<String> = BTreeSet::new();
    let mut series: BTreeSet<String> = BTreeSet::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let mut fail = |msg: String| errors.push(format!("line {lineno}: {msg}"));
        if line.is_empty() {
            continue;
        }
        if let Some(decl) = line.strip_prefix("# TYPE ") {
            let mut words = decl.split(' ');
            match (words.next(), words.next(), words.next()) {
                (Some(name), Some(kind), None) => {
                    if !valid_metric_name(name) {
                        fail(format!("invalid family name `{name}` in TYPE"));
                    } else if !TYPE_KINDS.contains(&kind) {
                        fail(format!("unknown TYPE kind `{kind}` for `{name}`"));
                    } else if types.contains_key(name) {
                        fail(format!("duplicate TYPE for family `{name}`"));
                    } else if sampled.contains(name) {
                        fail(format!("TYPE for `{name}` appears after its samples"));
                    } else {
                        types.insert(name.to_owned(), kind.to_owned());
                    }
                }
                _ => fail("TYPE needs exactly `# TYPE name kind`".to_owned()),
            }
            continue;
        }
        if let Some(help) = line.strip_prefix("# HELP ") {
            if !valid_metric_name(help.split(' ').next().unwrap_or("")) {
                fail("HELP needs `# HELP name text`".to_owned());
            }
            continue;
        }
        if line.starts_with('#') {
            fail("comments must be `# TYPE` or `# HELP`".to_owned());
            continue;
        }
        match split_sample(line) {
            Ok((name, labels, value)) => {
                if !valid_value(value) {
                    fail(format!("series `{name}{labels}` has non-numeric value `{value}`"));
                }
                if !series.insert(format!("{name}{labels}")) {
                    fail(format!("duplicate series `{name}{labels}`"));
                }
                let family = family_of(name, &types);
                if !types.contains_key(family) {
                    fail(format!("sample `{name}` has no `# TYPE {family}` declaration"));
                }
                sampled.insert(family.to_owned());
            }
            Err(msg) => fail(msg),
        }
    }
    if errors.is_empty() {
        Ok(MetricsSummary { families: types.len(), series: series.len() })
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# TYPE msync_bytes_total counter
msync_bytes_total{dir=\"c2s\",phase=\"map\"} 120
msync_bytes_total{dir=\"s2c\",phase=\"map\"} 64
msync_bytes_total{dir=\"c2s\",phase=\"map\",collection=\"default\"} 120
# TYPE msync_sessions_ended_total counter
msync_sessions_ended_total 3
# TYPE msync_rate_bytes_per_sec gauge
msync_rate_bytes_per_sec{window=\"10s\"} 512.375
msync_rate_bytes_per_sec{window=\"60s\"} 0.000
# TYPE msync_session_micros histogram
msync_session_micros_bucket{le=\"1024\"} 2
msync_session_micros_bucket{le=\"+Inf\"} 3
msync_session_micros_sum 2100
msync_session_micros_count 3
";

    #[test]
    fn a_real_shaped_exposition_validates() {
        let summary = validate_metrics(GOOD).unwrap();
        assert_eq!(summary, MetricsSummary { families: 4, series: 10 });
    }

    #[test]
    fn duplicate_type_and_late_type_are_flagged() {
        let errs = validate_metrics("# TYPE a counter\n# TYPE a counter\nb 1\n# TYPE b counter\n")
            .unwrap_err();
        assert!(errs.iter().any(|e| e.contains("duplicate TYPE for family `a`")), "{errs:?}");
        // `b 1` samples an undeclared family, and its TYPE comes late.
        assert!(errs.iter().any(|e| e.contains("no `# TYPE b`")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("after its samples")), "{errs:?}");
    }

    #[test]
    fn duplicate_series_are_flagged() {
        let errs = validate_metrics("# TYPE a counter\na{x=\"1\"} 1\na{x=\"1\"} 2\na{x=\"2\"} 3\n")
            .unwrap_err();
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].starts_with("line 3:"), "{errs:?}");
        assert!(errs[0].contains("duplicate series"), "{errs:?}");
    }

    #[test]
    fn label_syntax_is_checked() {
        for bad in [
            "# TYPE a counter\na{x=1} 1\n",             // unquoted value
            "# TYPE a counter\na{2x=\"1\"} 1\n",        // bad label name
            "# TYPE a counter\na{x=\"1\"y=\"2\"} 1\n",  // missing comma
            "# TYPE a counter\na{x=\"1} 1\n",           // unterminated quote/brace
            "# TYPE a counter\na{x=\"1\",x=\"2\"} 1\n", // duplicate key
        ] {
            assert!(validate_metrics(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn values_and_comments_are_checked() {
        assert!(validate_metrics("# TYPE a counter\na lots\n").is_err());
        assert!(validate_metrics("# TYPE a bogus-kind\n").is_err());
        assert!(validate_metrics("# random prose\n").is_err());
        assert!(validate_metrics("# HELP a what a counts\n# TYPE a counter\na 1\n").is_ok());
        // +Inf histograms bounds are numeric enough.
        assert!(validate_metrics("# TYPE a gauge\na +Inf\n").is_ok());
    }

    #[test]
    fn histogram_suffixes_resolve_to_their_family() {
        // `_sum` of a non-histogram family is its own (undeclared) name.
        let errs = validate_metrics("# TYPE a counter\na_sum 1\n").unwrap_err();
        assert!(errs[0].contains("no `# TYPE a_sum`"), "{errs:?}");
    }

    #[test]
    fn required_prefixes_count_declared_families() {
        assert_eq!(families_with_prefix(GOOD, "msync_"), 4);
        assert_eq!(families_with_prefix(GOOD, "msync_rate_"), 1);
        assert_eq!(families_with_prefix(GOOD, "msync_frame_pool_"), 0);
        // Only declarations count: a sample line is not a family.
        assert_eq!(families_with_prefix("a 1\n", "a"), 0);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let errs = validate_metrics("# TYPE a counter\na 1\n\n{oops} 1\n").unwrap_err();
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].starts_with("line 4:"), "{errs:?}");
    }
}
