//! Nonblocking session multiplexer: the event-driven half of the serve
//! daemon.
//!
//! One worker thread owns many connections. Each connection is a small
//! state holder — a [`FrameBuffer`] reassembling inbound frames, an
//! outbound byte queue, and (once the handshake passes) a sans-IO
//! [`CollectionServeMachine`] — and the worker's poll loop pumps all of
//! them: read whatever the sockets have, feed complete frames to the
//! machines, drain the machines' queued transmissions, and service
//! per-session deadlines from the machines' own timer requests. No
//! thread ever blocks on one peer, so a fixed worker pool (default: one
//! per core) serves an arbitrary number of concurrent sessions.
//!
//! Accounting parity: every byte charged here follows exactly the rules
//! of the blocking [`TcpTransport`](crate::tcp::TcpTransport) — sends
//! charged to the caller's phase at wire size when queued, inbound
//! bytes pooled unattributed until the machine names their phase, a
//! direction reversal counted as a half-trip — so a session served by
//! the multiplexer reports the same `TrafficStats` and trace events as
//! one served by a dedicated thread.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use msync_core::pipeline::ServeOutcome;
use msync_core::{CollectionServeMachine, CollectionSnapshot, Machine, Output, SyncError};
use msync_protocol::{
    frame_header, frame_wire_size, BufferPool, ChannelError, Direction, FrameBuf, Phase,
    TrafficStats,
};
use msync_trace::{
    render_sessions, Clock, EventKind, MetricsSnapshot, PhaseTag, RateWindows, Recorder,
    StatusBoard, StatusHandle, SystemClock,
};

use crate::daemon::{DaemonOptions, SessionReport, REFUSAL_REASON};
use crate::handshake::{
    eval_hello, parse_admin, unknown_collection_reject, AdminCmd, HelloOutcome, NetError,
};
use crate::registry::CollectionRegistry;
use crate::tcp::FrameBuffer;

/// How long an idle worker sleeps between polls. Far below the ARQ
/// retry timeout (500 ms default), so machine deadlines are observed
/// with negligible slack.
const IDLE_SLEEP: Duration = Duration::from_micros(200);

/// Bytes requested from a socket per nonblocking read.
const READ_CHUNK: usize = 64 * 1024;

/// Upper bound on an outbound write stall before the peer is declared
/// gone — the multiplexer's equivalent of the blocking transport's
/// write timeout.
const WRITE_STALL: Duration = Duration::from_secs(30);

fn micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// How often each worker samples the aggregate into the rate windows.
/// Several workers sample independently; [`RateWindows`] drops
/// submissions closer than its own minimum spacing.
const RATE_SAMPLE_US: u64 = 1_000_000;

/// The daemon's live-introspection state, shared by both serve models:
/// one clock for every session recorder (so ages, rates, and uptime
/// share a single epoch — the daemon's start), the live session board,
/// the windowed rate estimator, and the reload timestamps the `health`
/// verb reports.
pub(crate) struct Introspect {
    /// The one clock every recorder, board registration, and worker
    /// loop reads. Its epoch is daemon start, so `now_micros()` *is*
    /// the uptime.
    pub(crate) clock: Arc<SystemClock>,
    /// Live per-session status registry (weak slots; sessions vanish
    /// when their connection drops).
    pub(crate) board: StatusBoard,
    /// Cumulative-sample ring behind the `stats` rate gauges.
    pub(crate) rates: Mutex<RateWindows>,
    /// Clock reading of the last successful `reload`, per collection.
    reloads: Mutex<BTreeMap<String, u64>>,
    /// Worker-pool size (1 for the thread-per-session model).
    pub(crate) workers: usize,
    /// Slow-session watchdog threshold; `None` disables the watchdog.
    pub(crate) slow_session_us: Option<u64>,
}

impl Introspect {
    pub(crate) fn new(workers: usize, slow_session: Option<Duration>) -> Self {
        let clock = Arc::new(SystemClock::new());
        Introspect {
            board: StatusBoard::new(clock.clone()),
            rates: Mutex::new(RateWindows::new()),
            reloads: Mutex::new(BTreeMap::new()),
            workers,
            slow_session_us: slow_session.map(micros),
            clock,
        }
    }

    /// Stamp a successful reload of `name` for the `health` report.
    pub(crate) fn note_reload(&self, name: &str) {
        let t_us = self.clock.now_micros();
        self.reloads.lock().unwrap_or_else(PoisonError::into_inner).insert(name.to_owned(), t_us);
    }
}

/// The one-line WARN the watchdog emits alongside the
/// [`EventKind::SlowSession`] trace event. Split out so the format is
/// unit-testable without a live socket.
pub(crate) fn slow_session_warning(
    id: u64,
    peer: Option<SocketAddr>,
    phase: PhaseTag,
    waited_us: u64,
) -> String {
    let peer = peer.map_or_else(|| "-".to_owned(), |p| p.to_string());
    format!("WARN slow-session id={id} peer={peer} phase={} waited_us={waited_us}", phase.as_str())
}

/// State shared by every worker thread of one daemon, and by the
/// blocking thread-per-session model: the collection registry, the
/// options, the admission counter, the stop flag, and the metrics
/// aggregate + log-callback sink every finished session reports to.
pub(crate) struct Shared<F> {
    /// The served collections. Entry contents swap at runtime
    /// (`reload`); the name set is fixed for the daemon's lifetime.
    pub(crate) registry: Arc<CollectionRegistry>,
    /// Daemon knobs (retry policy, timeouts, admission cap).
    pub(crate) opts: DaemonOptions,
    /// Per-session report callback.
    pub(crate) log: F,
    /// Aggregate of every finished session's metrics snapshot.
    pub(crate) metrics: Arc<Mutex<MetricsSnapshot>>,
    /// The same finished-session metrics, bucketed by the collection
    /// the session was bound to. Every bucketed snapshot is also in
    /// the aggregate, so the buckets sum to it.
    pub(crate) per_collection: Arc<Mutex<BTreeMap<String, MetricsSnapshot>>>,
    /// Sessions currently admitted (handshaking or serving).
    pub(crate) active: AtomicUsize,
    /// Set by [`Daemon::shutdown`](crate::daemon::Daemon::shutdown).
    pub(crate) stop: Arc<AtomicBool>,
    /// Live-introspection state behind the `stats`/`sessions`/`health`
    /// admin verbs and the slow-session watchdog.
    pub(crate) intro: Arc<Introspect>,
    /// Frame-buffer pool shared by every session this daemon serves:
    /// encoded ARQ frames and reassembled inbound payloads draw their
    /// allocations here and return them on last drop.
    pub(crate) pool: BufferPool,
}

impl<F> Shared<F>
where
    F: Fn(SessionReport) + Send + Sync + 'static,
{
    /// Try to claim an admission slot. `false` means the connection
    /// must be refused with the typed capacity reason.
    pub(crate) fn try_admit(&self) -> bool {
        let Some(max) = self.opts.max_sessions else {
            self.active.fetch_add(1, Ordering::SeqCst);
            return true;
        };
        loop {
            let cur = self.active.load(Ordering::SeqCst);
            if cur >= max {
                return false;
            }
            if self
                .active
                .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return true;
            }
        }
    }

    /// Release an admission slot claimed by [`Shared::try_admit`].
    pub(crate) fn release(&self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
    }

    /// Merge a finished session into the aggregate (and, when the
    /// session was bound to a collection, into that collection's
    /// bucket), rewrite the metrics file if configured, and deliver
    /// the report. The admission slot is released *before* this runs,
    /// so a report's delivery is proof the slot is free again.
    pub(crate) fn deliver(&self, report: SessionReport) {
        let aggregate = {
            let mut agg = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
            agg.merge(&report.metrics);
            agg.clone()
        };
        if let Some(name) = &report.collection {
            let mut per = self.per_collection.lock().unwrap_or_else(PoisonError::into_inner);
            per.entry(name.clone()).or_insert_with(MetricsSnapshot::new).merge(&report.metrics);
        }
        if let Some(path) = &self.opts.metrics_out {
            // Best-effort: metrics must never fail a session. Atomic so
            // a concurrent scrape never reads a torn rendering.
            let _ = msync_core::atomic_write_file(path, self.render_metrics(&aggregate).as_bytes());
        }
        (self.log)(report);
    }

    /// The daemon's full Prometheus dump: the aggregate (typed, with
    /// histograms) followed by one `collection`-labeled counter block
    /// per served collection.
    pub(crate) fn render_metrics(&self, aggregate: &MetricsSnapshot) -> String {
        let mut text = aggregate.render_prometheus();
        let per = self.per_collection.lock().unwrap_or_else(PoisonError::into_inner);
        for (name, snap) in per.iter() {
            text.push_str(&snap.render_prometheus_collection(name));
        }
        let p = self.pool.stats();
        for (name, value) in [
            ("msync_frame_pool_allocated_total", p.allocated_total),
            ("msync_frame_pool_reused_total", p.reused_total),
            ("msync_frame_pool_returned_total", p.returned_total),
        ] {
            let _ = writeln!(text, "# TYPE {name} counter");
            let _ = writeln!(text, "{name} {value}");
        }
        for (name, value) in [
            ("msync_frame_pool_outstanding", p.outstanding),
            ("msync_frame_pool_high_water", p.high_water),
            ("msync_frame_pool_idle", p.idle),
        ] {
            let _ = writeln!(text, "# TYPE {name} gauge");
            let _ = writeln!(text, "{name} {value}");
        }
        text
    }

    /// Copy of the finished-session aggregate. Live sessions merge in
    /// when they finish; the `sessions` verb is the live view.
    fn aggregate_now(&self) -> MetricsSnapshot {
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// The `stats` verb's payload: the Prometheus dump plus the
    /// windowed rate gauges, or the flat JSON rendering. Scraping also
    /// feeds the rate estimator, so a lone scraper still gets rates.
    pub(crate) fn stats_payload(&self, json: bool) -> String {
        let aggregate = self.aggregate_now();
        let now_us = self.intro.clock.now_micros();
        let mut rates = self.intro.rates.lock().unwrap_or_else(PoisonError::into_inner);
        rates.sample(now_us, &aggregate);
        if json {
            aggregate.render_json()
        } else {
            let mut text = self.render_metrics(&aggregate);
            text.push_str(&rates.render_gauges(now_us));
            text
        }
    }

    /// The `sessions` verb's payload: the live session table.
    pub(crate) fn sessions_payload(&self) -> String {
        render_sessions(&self.intro.board.snapshot(), self.intro.clock.now_micros())
    }

    /// The `health` verb's payload: daemon vitals as `key=value` lines.
    pub(crate) fn health_payload(&self) -> String {
        let aggregate = self.aggregate_now();
        let sessions = self.intro.board.snapshot();
        let active = self.active.load(Ordering::SeqCst);
        let mut out = String::new();
        let _ = writeln!(out, "uptime_us={}", self.intro.clock.now_micros());
        let _ = writeln!(out, "workers={}", self.intro.workers);
        let _ = writeln!(out, "active_conns={active}");
        let _ = writeln!(out, "live_sessions={}", sessions.len());
        let _ = writeln!(
            out,
            "live_slow_sessions={}",
            sessions.iter().filter(|s| s.slow_flagged).count()
        );
        match self.opts.max_sessions {
            Some(max) => {
                let _ = writeln!(out, "max_sessions={max}");
                let _ = writeln!(out, "admission_headroom={}", max.saturating_sub(active));
            }
            None => {
                let _ = writeln!(out, "max_sessions=unlimited");
            }
        }
        let _ = writeln!(out, "watchdog_threshold_us={}", self.intro.slow_session_us.unwrap_or(0));
        let _ = writeln!(out, "trace_events_dropped={}", aggregate.events_dropped);
        let _ = writeln!(out, "slow_sessions_total={}", aggregate.slow_sessions);
        let reloads = self.intro.reloads.lock().unwrap_or_else(PoisonError::into_inner);
        for (name, t_us) in reloads.iter() {
            let _ = writeln!(out, "last_reload_us.{name}={t_us}");
        }
        out
    }

    /// Execute one admin command: the full `ok …` reply plus the
    /// reload file count for the session outcome, or the `err` reason.
    /// Shared by both serve models so the verbs cannot drift.
    pub(crate) fn execute_admin(&self, cmd: AdminCmd) -> Result<(String, usize), String> {
        match cmd {
            AdminCmd::Reload(name) => self.registry.reload(&name).map(|files| {
                self.intro.note_reload(&name);
                (format!("ok {files}"), files)
            }),
            AdminCmd::Stats { json } => Ok((format!("ok\n{}", self.stats_payload(json)), 0)),
            AdminCmd::Sessions => Ok((format!("ok\n{}", self.sessions_payload()), 0)),
            AdminCmd::Health => Ok((format!("ok\n{}", self.health_payload()), 0)),
        }
    }
}

/// Where one multiplexed connection is in its life.
enum ConnPhase {
    /// Admitted; waiting for the client hello.
    Hello,
    /// Over capacity; waiting for the hello so the typed refusal can be
    /// delivered in reply (an unsolicited close would race the
    /// client's own send and surface as a bare disconnect).
    Refused,
    /// Handshake agreed; the collection-serve machine is running.
    Serving,
    /// Session decided; flushing queued output, then closing.
    Drain,
}

/// One multiplexed connection.
struct MuxConn {
    stream: TcpStream,
    peer: Option<SocketAddr>,
    admitted: bool,
    phase: ConnPhase,
    machine: Option<CollectionServeMachine>,
    /// The snapshot this session was bound to at handshake time. A
    /// registry swap replaces the entry's `Arc`, never this one: the
    /// session finishes against the collection it started with.
    snapshot: Option<Arc<CollectionSnapshot>>,
    /// Canonical name of the bound collection, for per-collection
    /// metrics bucketing.
    collection: Option<String>,
    /// Hello deadline while in `Hello` / `Refused`.
    deadline_us: u64,
    result: Option<Result<ServeOutcome, NetError>>,
    inbuf: FrameBuffer,
    scratch: Vec<u8>,
    /// Outbound frames awaiting the socket, each a framing header plus
    /// a refcounted payload share — never a flattened byte copy. The
    /// whole queue flushes through one vectored write per pump.
    outq: VecDeque<(Vec<u8>, FrameBuf)>,
    /// Bytes of the queue's front frames already written.
    out_pos: usize,
    /// When the current outbound stall began, if one is in progress.
    stall_since_us: Option<u64>,
    eof: bool,
    /// A corrupt frame poisoned the inbound stream (the reassembler
    /// cannot advance past a bad length word); stop reading and let the
    /// machine's retry budget conclude the session.
    poisoned: bool,
    stats: TrafficStats,
    last_dir: Option<Direction>,
    half_trips: u64,
    pending_inbound: u64,
    recorder: Recorder,
    /// Live status slot on the daemon's board; `None` for refused
    /// connections and for admin exchanges (which de-list themselves).
    status: Option<StatusHandle>,
}

impl MuxConn {
    fn new(
        stream: TcpStream,
        admitted: bool,
        now_us: u64,
        handshake_timeout: Duration,
        intro: &Introspect,
    ) -> std::io::Result<Self> {
        let peer = stream.peer_addr().ok();
        // Same socket posture as the blocking transport: no Nagle (the
        // protocol is request/response), plus a defensive read deadline
        // — nonblocking reads return immediately regardless, but no
        // code path may ever issue an undeadlined blocking read.
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(WRITE_STALL))?;
        stream.set_nonblocking(true)?;
        // Every recorder shares the daemon clock, so the board's ages
        // and the watchdog's waits are in one epoch.
        let recorder = Recorder::with_clock(intro.clock.clone());
        let status = admitted.then(|| {
            let label = peer.map_or_else(|| "-".to_owned(), |p| p.to_string());
            intro.board.register(&label)
        });
        if let Some(handle) = &status {
            recorder.set_status(handle.clone());
        }
        Ok(Self {
            stream,
            peer,
            admitted,
            phase: if admitted { ConnPhase::Hello } else { ConnPhase::Refused },
            machine: None,
            snapshot: None,
            collection: None,
            deadline_us: now_us.saturating_add(micros(handshake_timeout)),
            result: None,
            inbuf: FrameBuffer::new(),
            scratch: vec![0u8; READ_CHUNK],
            outq: VecDeque::new(),
            out_pos: 0,
            stall_since_us: None,
            eof: false,
            poisoned: false,
            stats: TrafficStats::new(),
            last_dir: None,
            half_trips: 0,
            pending_inbound: 0,
            recorder,
            status,
        })
    }

    fn bump(&mut self, dir: Direction) {
        if self.last_dir != Some(dir) {
            self.half_trips += 1;
            self.last_dir = Some(dir);
        }
    }

    /// Queue one frame for sending, charged to `phase` at wire size —
    /// the multiplexed mirror of `TcpTransport::send` plus the pump's
    /// retransmit note.
    fn queue_send(&mut self, payload: &FrameBuf, phase: Phase, retransmit: bool) {
        self.outq.push_back((frame_header(payload), payload.share()));
        let wire = frame_wire_size(payload.len());
        self.stats.record(Direction::ServerToClient, phase, wire);
        self.recorder.record(EventKind::FrameSend {
            dir: Direction::ServerToClient.into(),
            phase: phase.into(),
            bytes: wire,
        });
        self.stats.frames += 1;
        self.bump(Direction::ServerToClient);
        if retransmit {
            self.stats.retransmits += 1;
        }
    }

    /// Attribute pooled inbound bytes to `phase` — the multiplexed
    /// mirror of `TcpTransport::attribute_inbound`.
    fn attribute(&mut self, phase: Phase) {
        let bytes = std::mem::take(&mut self.pending_inbound);
        if bytes > 0 {
            self.stats.record(Direction::ClientToServer, phase, bytes);
            self.recorder.record(EventKind::FrameRecv {
                dir: Direction::ClientToServer.into(),
                phase: phase.into(),
                bytes,
            });
        }
    }

    /// This session's `TrafficStats`, by the blocking transport's
    /// rules: unattributed inbound bytes charged to the map phase, two
    /// half-trips rounded up to a roundtrip.
    fn stats_now(&self) -> TrafficStats {
        let mut out = self.stats.clone();
        if self.pending_inbound > 0 {
            out.record(Direction::ClientToServer, Phase::Map, self.pending_inbound);
        }
        out.roundtrips = u32::try_from(self.half_trips.div_ceil(2)).unwrap_or(u32::MAX);
        out
    }

    /// End the session with `error` (unless a verdict already landed)
    /// and move to the drain phase.
    fn fail(&mut self, error: NetError) {
        if self.result.is_none() {
            self.result = Some(Err(error));
        }
        self.phase = ConnPhase::Drain;
    }

    /// Drain the machine's queued effects. Returns whether anything
    /// observable happened (a transmission or the session finishing).
    fn pump_machine(&mut self, now_us: u64) -> bool {
        let Some(mut m) = self.machine.take() else {
            return false;
        };
        let files = self.snapshot.as_ref().map_or(0, |s| s.len());
        let mut progressed = false;
        loop {
            match m.poll_output(now_us) {
                Ok(Output::Transmit { frame, phase, retransmit }) => {
                    self.queue_send(&frame, phase, retransmit);
                    progressed = true;
                }
                Ok(Output::Attribute { phase }) => self.attribute(phase),
                Ok(Output::Wait { .. }) => break,
                Ok(Output::Done) => {
                    let outcome = m.outcome(files, self.stats_now());
                    self.result = Some(Ok(outcome));
                    self.phase = ConnPhase::Drain;
                    progressed = true;
                    break;
                }
                Err(e) => {
                    self.fail(NetError::Sync(e));
                    progressed = true;
                    break;
                }
            }
        }
        self.machine = Some(m);
        progressed
    }

    /// The first frame arrived on an admitted connection: an admin
    /// command is executed and answered; a client hello is evaluated,
    /// resolved against the registry, and — if everything holds — the
    /// serve machine starts, bound to the resolved snapshot for the
    /// life of the session.
    fn on_hello<F>(&mut self, payload: &[u8], shared: &Shared<F>, now_us: u64)
    where
        F: Fn(SessionReport) + Send + Sync + 'static,
    {
        let retry = shared.opts.retry;
        self.attribute(Phase::Setup);
        if let Some(cmd) = parse_admin(payload) {
            self.on_admin(cmd, shared);
            return;
        }
        let outcome = match eval_hello(payload) {
            HelloOutcome::Accept { cfg, collection, reply } => {
                match shared.registry.resolve(collection.as_deref()) {
                    Some((name, snap)) => {
                        self.snapshot = Some(snap);
                        if let Some(status) = &self.status {
                            status.set_collection(&name);
                        }
                        self.collection = Some(name);
                        HelloOutcome::Accept { cfg, collection, reply }
                    }
                    // `collection` is Some here: a `None` request
                    // resolves to the default entry, which always
                    // exists.
                    None => {
                        let (reply, error) =
                            unknown_collection_reject(collection.as_deref().unwrap_or_default());
                        HelloOutcome::Reject { reply, error }
                    }
                }
            }
            reject => reject,
        };
        match outcome {
            HelloOutcome::Accept { cfg, reply, .. } => {
                self.queue_send(&FrameBuf::from(reply), Phase::Setup, false);
                self.recorder.record(EventKind::Handshake { ok: true });
                match CollectionServeMachine::new(&cfg, retry, self.recorder.clone(), now_us) {
                    Ok(mut m) => {
                        m.set_pool(shared.pool.clone());
                        self.machine = Some(m);
                        self.phase = ConnPhase::Serving;
                    }
                    Err(e) => self.fail(NetError::Sync(e)),
                }
            }
            HelloOutcome::Reject { reply, error } => {
                self.queue_send(&FrameBuf::from(reply), Phase::Setup, false);
                self.recorder.record(EventKind::Handshake { ok: false });
                self.fail(error);
            }
        }
    }

    /// Execute one admin command and answer `ok …` / `err …`. The
    /// connection then drains: admin exchanges are one-shot.
    fn on_admin<F>(&mut self, cmd: Result<AdminCmd, String>, shared: &Shared<F>)
    where
        F: Fn(SessionReport) + Send + Sync + 'static,
    {
        // An admin exchange is not a sync session: de-list it before
        // rendering, so `sessions` never shows the scrape itself.
        self.recorder.clear_status();
        self.status = None;
        match cmd.and_then(|cmd| shared.execute_admin(cmd)) {
            Ok((reply, files)) => {
                self.queue_send(&FrameBuf::from(reply.into_bytes()), Phase::Setup, false);
                self.recorder.record(EventKind::Handshake { ok: true });
                self.result =
                    Some(Ok(ServeOutcome { files, sessions: 0, traffic: self.stats_now() }));
                self.phase = ConnPhase::Drain;
            }
            Err(reason) => {
                let reply = format!("err {reason}").into_bytes();
                self.queue_send(&FrameBuf::from(reply), Phase::Setup, false);
                self.recorder.record(EventKind::Handshake { ok: false });
                self.fail(NetError::Handshake(format!("admin command failed: {reason}")));
            }
        }
    }

    /// The hello of an over-capacity connection arrived: answer with
    /// the typed refusal and drain.
    fn on_refused_hello(&mut self) {
        self.attribute(Phase::Setup);
        let reply = format!("err {REFUSAL_REASON}").into_bytes();
        self.queue_send(&FrameBuf::from(reply), Phase::Setup, false);
        self.recorder.record(EventKind::Handshake { ok: false });
        self.fail(NetError::Handshake(format!("refused client: {REFUSAL_REASON}")));
    }

    /// One poll-loop visit: read, dispatch frames, service deadlines,
    /// run the watchdog, flush. Returns whether the connection made
    /// observable progress.
    fn tick<F>(&mut self, shared: &Shared<F>) -> bool
    where
        F: Fn(SessionReport) + Send + Sync + 'static,
    {
        let now_us = shared.intro.clock.now_micros();
        let mut progressed = false;

        // Read whatever the socket has. Drain mode stops reading: the
        // verdict is in, and any unread bytes belong to no session.
        if !self.eof && !self.poisoned && !matches!(self.phase, ConnPhase::Drain) {
            loop {
                match self.stream.read(&mut self.scratch) {
                    Ok(0) => {
                        self.eof = true;
                        progressed = true;
                        break;
                    }
                    Ok(n) => {
                        self.inbuf.extend(&self.scratch[..n]);
                        progressed = true;
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => {
                        self.eof = true;
                        progressed = true;
                        break;
                    }
                }
            }
        }

        // Dispatch complete frames. The machine is pumped after every
        // frame so attribution pools exactly one frame's bytes, the
        // same interleaving the blocking pump produces.
        loop {
            if self.poisoned || matches!(self.phase, ConnPhase::Drain) {
                break;
            }
            match self.inbuf.take_frame() {
                Ok(Some((payload, wire))) => {
                    progressed = true;
                    self.pending_inbound += wire;
                    self.stats.frames += 1;
                    self.bump(Direction::ClientToServer);
                    match self.phase {
                        ConnPhase::Hello => {
                            self.on_hello(&payload, shared, now_us);
                            self.pump_machine(now_us);
                        }
                        ConnPhase::Refused => self.on_refused_hello(),
                        ConnPhase::Serving => {
                            if let Some(mut m) = self.machine.take() {
                                // Serving implies a bound snapshot; the
                                // machine always sees the one Arc this
                                // session bound at handshake time.
                                let snap = self.snapshot.clone();
                                let fed = match &snap {
                                    Some(snap) => m.on_frame(snap, &payload, now_us),
                                    None => Err(SyncError::Desync("serving without a snapshot")),
                                };
                                self.machine = Some(m);
                                if let Err(e) = fed {
                                    self.fail(NetError::Sync(e));
                                } else {
                                    self.pump_machine(now_us);
                                }
                            }
                        }
                        ConnPhase::Drain => {}
                    }
                }
                Ok(None) => break,
                Err(err) => {
                    progressed = true;
                    self.poisoned = true;
                    match self.phase {
                        ConnPhase::Hello | ConnPhase::Refused => {
                            self.recorder.record(EventKind::Handshake { ok: false });
                            self.fail(NetError::Channel(err));
                        }
                        ConnPhase::Serving => {
                            if let Some(mut m) = self.machine.take() {
                                let fed = m.on_corrupt_frame(now_us);
                                self.machine = Some(m);
                                if let Err(e) = fed {
                                    self.fail(NetError::Sync(e));
                                }
                            }
                        }
                        ConnPhase::Drain => {}
                    }
                    break;
                }
            }
        }

        // Peer hung up: during the handshake that is a failed session;
        // in service it is the normal end (the client owns the verdict
        // and disconnecting is how it signals completion).
        if self.eof {
            match self.phase {
                ConnPhase::Hello | ConnPhase::Refused => {
                    self.recorder.record(EventKind::Handshake { ok: false });
                    self.fail(NetError::Channel(ChannelError::Disconnected));
                }
                ConnPhase::Serving => {
                    if let Some(mut m) = self.machine.take() {
                        let fed = m.on_disconnect();
                        self.machine = Some(m);
                        if let Err(e) = fed {
                            self.fail(NetError::Sync(e));
                        }
                    }
                }
                ConnPhase::Drain => {}
            }
        }

        // Deadlines: the hello has its own; a serving machine observes
        // expiry itself when polled with the current time.
        match self.phase {
            ConnPhase::Hello | ConnPhase::Refused => {
                if now_us >= self.deadline_us {
                    self.recorder.record(EventKind::Handshake { ok: false });
                    self.fail(NetError::Channel(ChannelError::Timeout));
                    progressed = true;
                }
            }
            ConnPhase::Serving => progressed |= self.pump_machine(now_us),
            ConnPhase::Drain => {}
        }

        // Slow-session watchdog: a session sitting in one protocol
        // phase past the threshold gets one trace event and one WARN
        // line per stall (the flag rearms on phase change).
        if !matches!(self.phase, ConnPhase::Drain) {
            if let (Some(threshold_us), Some(status)) = (shared.intro.slow_session_us, &self.status)
            {
                if let Some((phase, waited_us)) = status.check_slow(now_us, threshold_us) {
                    self.recorder.record(EventKind::SlowSession { phase, waited_us });
                    let id = status.snapshot().id;
                    eprintln!("{}", slow_session_warning(id, self.peer, phase, waited_us));
                    progressed = true;
                }
            }
        }

        progressed |= self.flush(now_us);
        progressed
    }

    /// Write as much queued output as the socket accepts. A stall
    /// longer than [`WRITE_STALL`] or a hard write error declares the
    /// peer gone, exactly as the blocking transport's write timeout
    /// would.
    fn flush(&mut self, now_us: u64) -> bool {
        let mut progressed = false;
        while !self.outq.is_empty() {
            // Gather the queue into one vectored write: each frame
            // contributes its header slice and its payload slice (the
            // shared allocation), with already-written bytes skipped.
            let wrote = {
                let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(self.outq.len() * 2);
                let mut skip = self.out_pos;
                for (header, payload) in &self.outq {
                    for part in [&header[..], &payload[..]] {
                        if skip >= part.len() {
                            skip -= part.len();
                        } else {
                            slices.push(IoSlice::new(&part[skip..]));
                            skip = 0;
                        }
                    }
                }
                self.stream.write_vectored(&slices)
            };
            match wrote {
                Ok(0) => {
                    self.give_up_output(NetError::Sync(SyncError::PeerGone));
                    break;
                }
                Ok(n) => {
                    self.out_pos += n;
                    self.stall_since_us = None;
                    progressed = true;
                    // Retire fully written frames; their payload shares
                    // drop here and pooled buffers go home.
                    while let Some((header, payload)) = self.outq.front() {
                        let frame_len = header.len() + payload.len();
                        if self.out_pos < frame_len {
                            break;
                        }
                        self.out_pos -= frame_len;
                        self.outq.pop_front();
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    let since = *self.stall_since_us.get_or_insert(now_us);
                    if now_us.saturating_sub(since) >= micros(WRITE_STALL) {
                        self.give_up_output(NetError::Sync(SyncError::Timeout));
                    }
                    break;
                }
                Err(_) => {
                    self.give_up_output(NetError::Sync(SyncError::PeerGone));
                    break;
                }
            }
        }
        progressed
    }

    /// The peer stopped draining our output: discard it and end the
    /// session (keeping any verdict that already landed).
    fn give_up_output(&mut self, error: NetError) {
        self.outq.clear();
        self.out_pos = 0;
        self.eof = true;
        if self.result.is_none() {
            self.result = Some(Err(error));
        }
        self.phase = ConnPhase::Drain;
    }

    /// Whether the session is over and fully flushed (or unflushable).
    fn is_done(&self) -> bool {
        matches!(self.phase, ConnPhase::Drain) && (self.outq.is_empty() || self.eof)
    }

    /// Consume the connection into its report.
    fn finish(self) -> SessionReport {
        let result = self.result.unwrap_or(Err(NetError::Handshake(
            "session ended before reaching a verdict".to_owned(),
        )));
        SessionReport {
            peer: self.peer,
            result,
            metrics: self.recorder.snapshot(),
            collection: self.collection,
        }
    }
}

/// One worker thread's poll loop: accept new connections (first worker
/// to reach the listener wins), tick every owned connection, deliver
/// finished sessions, sleep briefly when fully idle. On shutdown the
/// worker stops accepting, drains its in-flight sessions, and returns.
pub(crate) fn worker_loop<F>(listener: &TcpListener, shared: &Shared<F>)
where
    F: Fn(SessionReport) + Send + Sync + 'static,
{
    let clock = Arc::clone(&shared.intro.clock);
    let mut conns: Vec<MuxConn> = Vec::new();
    let mut last_sample_us = 0u64;
    loop {
        let stopping = shared.stop.load(Ordering::SeqCst);
        let mut progressed = false;
        // Feed the rate estimator about once a second per worker; the
        // estimator itself drops submissions that land too close.
        let now_us = clock.now_micros();
        if now_us >= last_sample_us.saturating_add(RATE_SAMPLE_US) {
            last_sample_us = now_us;
            let aggregate = shared.metrics.lock().unwrap_or_else(PoisonError::into_inner).clone();
            shared
                .intro
                .rates
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .sample(now_us, &aggregate);
        }
        if !stopping {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        progressed = true;
                        let admitted = shared.try_admit();
                        let made = MuxConn::new(
                            stream,
                            admitted,
                            clock.now_micros(),
                            shared.opts.handshake_timeout,
                            &shared.intro,
                        );
                        match made {
                            Ok(mut conn) => {
                                conn.inbuf.set_pool(shared.pool.clone());
                                conns.push(conn);
                            }
                            // Socket options failed: the stream is
                            // unusable, drop it on the floor.
                            Err(_) => {
                                if admitted {
                                    shared.release();
                                }
                            }
                        }
                    }
                    Err(_) => break,
                }
            }
        }
        let mut i = 0;
        while i < conns.len() {
            progressed |= conns[i].tick(shared);
            if conns[i].is_done() {
                let conn = conns.swap_remove(i);
                if conn.admitted {
                    shared.release();
                }
                shared.deliver(conn.finish());
                progressed = true;
            } else {
                i += 1;
            }
        }
        if stopping && conns.is_empty() {
            return;
        }
        if !progressed {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}
