//! TCP-backed [`Transport`].
//!
//! The wire format is exactly the in-memory channel's: each frame is a
//! LEB128 payload length, a CRC32 over the payload, then the payload
//! ([`encode_frame`]/[`decode_frame`]). A stream socket adds only the
//! need to reassemble frames from arbitrary read boundaries.
//!
//! Discipline (enforced by the xtask `channel-discipline` gate):
//!
//! * every socket read is preceded by `set_read_timeout`, so a dead or
//!   silent peer surfaces as [`ChannelError::Timeout`] within the ARQ
//!   retry budget instead of hanging the session forever;
//! * every io error maps to a typed [`ChannelError`] — timeouts to
//!   `Timeout`, connection teardown to `Disconnected`, and an inflated
//!   length word to `Corrupt` before any allocation happens.
//!
//! Accounting: sends are charged to the caller's phase at full wire
//! size, like the in-memory channel. Inbound bytes pool in an
//! unattributed counter until the session layer parses the frame header
//! and calls [`Transport::attribute_inbound`] with the real phase. The
//! raw [`TcpTransport::socket_sent`] / [`TcpTransport::socket_received`]
//! counters are kept separately so tests can assert that the accounting
//! and the socket agree to the byte.

use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use msync_protocol::{
    decode_frame, frame_header, frame_wire_size, BufferPool, ChannelError, Direction, FrameBuf,
    FrameError, Phase, TrafficStats, Transport,
};
use msync_trace::{EventKind, Recorder};

/// Hard cap on a decoded payload length. A length word above this is
/// rejected as corrupt before any buffering: no real payload approaches
/// a gigabyte, so a flipped length bit cannot demand unbounded memory.
const MAX_PAYLOAD: u64 = 1 << 30;

/// Bytes requested from the socket per read call.
const READ_CHUNK: usize = 64 * 1024;

/// Upper bound on a blocking write before the peer is declared gone.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Incremental frame reassembly over a byte stream.
///
/// A stream socket delivers bytes at arbitrary boundaries; this buffer
/// accumulates them ([`FrameBuffer::extend`]) and splits complete
/// frames off the front ([`FrameBuffer::take_frame`]). It is the one
/// implementation of the wire framing shared by the blocking
/// [`TcpTransport`] and the nonblocking daemon multiplexer, so the two
/// cannot drift.
#[derive(Debug, Default)]
pub(crate) struct FrameBuffer {
    buf: Vec<u8>,
    /// When set, extracted payloads are sealed into pooled buffers that
    /// return to `pool` on last drop.
    pool: Option<BufferPool>,
}

impl FrameBuffer {
    /// An empty buffer.
    pub(crate) fn new() -> Self {
        Self { buf: Vec::new(), pool: None }
    }

    /// Draw payload buffers from `pool` from now on.
    pub(crate) fn set_pool(&mut self, pool: BufferPool) {
        self.pool = Some(pool);
    }

    /// Append raw bytes read from the stream.
    pub(crate) fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Split one complete frame off the front, if present, returning
    /// the decoded payload and the frame's wire size. `Ok(None)` means
    /// more bytes are needed.
    ///
    /// # Errors
    /// [`ChannelError::Corrupt`] on an impossible length word (the
    /// buffer cannot advance past it) or a failed CRC (the frame's
    /// bytes are consumed, later frames remain readable) — the same
    /// contract the blocking transport has always had.
    pub(crate) fn take_frame(&mut self) -> Result<Option<(FrameBuf, u64)>, ChannelError> {
        let mut len = 0u64;
        let mut shift = 0u32;
        let mut pos = 0usize;
        loop {
            let Some(&b) = self.buf.get(pos) else {
                return Ok(None);
            };
            pos += 1;
            if shift >= 64 {
                return Err(ChannelError::Corrupt(FrameError::Length));
            }
            len |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                break;
            }
            shift += 7;
        }
        if len > MAX_PAYLOAD {
            return Err(ChannelError::Corrupt(FrameError::Length));
        }
        let len = usize::try_from(len).map_err(|_| ChannelError::Corrupt(FrameError::Length))?;
        let total = pos
            .checked_add(4)
            .and_then(|t| t.checked_add(len))
            .ok_or(ChannelError::Corrupt(FrameError::Length))?;
        if self.buf.len() < total {
            return Ok(None);
        }
        // Validate in place, then copy the payload region once — out of
        // the reassembly window into a (pooled) allocation of its own.
        // The framing bytes are dropped where they lie; this is the only
        // copy a received frame's payload undergoes in the daemon.
        let payload_len = match decode_frame(&self.buf[..total]) {
            Ok(payload) => payload.len(),
            Err(e) => {
                self.buf.drain(..total);
                return Err(ChannelError::Corrupt(e));
            }
        };
        msync_protocol::note_frame_copy(payload_len);
        let start = total - payload_len;
        let mut out = match &self.pool {
            Some(pool) => pool.checkout(),
            None => Vec::with_capacity(payload_len),
        };
        out.extend_from_slice(&self.buf[start..total]);
        self.buf.drain(..total);
        let payload = match &self.pool {
            Some(pool) => pool.seal(out),
            None => FrameBuf::from(out),
        };
        Ok(Some((payload, total as u64)))
    }
}

/// A [`Transport`] over one TCP stream.
///
/// Construct with [`TcpTransport::client`] on the connecting side and
/// [`TcpTransport::server`] on the accepting side; the two differ only
/// in which [`Direction`] their sends are charged to, so that a
/// client's and a server's `TrafficStats` describe the same wire the
/// same way the shared in-memory channel does.
pub struct TcpTransport {
    stream: TcpStream,
    /// Received-but-not-yet-framed bytes.
    inbound: FrameBuffer,
    /// Reusable read buffer.
    scratch: Vec<u8>,
    stats: TrafficStats,
    outbound_dir: Direction,
    /// Last traffic direction seen, for roundtrip counting: a reversal
    /// is a half-trip, two half-trips are a roundtrip — the same rule
    /// the in-memory channel applies.
    last_dir: Option<Direction>,
    half_trips: u64,
    /// Wire bytes of received frames not yet attributed to a phase.
    pending_inbound: u64,
    socket_sent: u64,
    socket_received: u64,
    /// Trace recorder; off unless [`TcpTransport::set_recorder`] ran.
    recorder: Recorder,
}

impl TcpTransport {
    /// Wrap the connecting side of a stream (sends are client→server).
    ///
    /// # Errors
    /// Any socket-option error (the stream is unusable).
    pub fn client(stream: TcpStream) -> std::io::Result<Self> {
        Self::new(stream, Direction::ClientToServer)
    }

    /// Wrap the accepting side of a stream (sends are server→client).
    ///
    /// # Errors
    /// Any socket-option error (the stream is unusable).
    pub fn server(stream: TcpStream) -> std::io::Result<Self> {
        Self::new(stream, Direction::ServerToClient)
    }

    fn new(stream: TcpStream, outbound_dir: Direction) -> std::io::Result<Self> {
        // The protocol is request/response with small frames; Nagle
        // would add an RTT of latency to every flush.
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
        Ok(Self {
            stream,
            inbound: FrameBuffer::new(),
            scratch: vec![0u8; READ_CHUNK],
            stats: TrafficStats::new(),
            outbound_dir,
            last_dir: None,
            half_trips: 0,
            pending_inbound: 0,
            socket_sent: 0,
            socket_received: 0,
            recorder: Recorder::off(),
        })
    }

    /// Attach a trace recorder. Every byte subsequently charged to
    /// `TrafficStats` is mirrored by exactly one `frame_send` /
    /// `frame_recv` event (sends at charge time, receives when the
    /// session layer attributes them to a phase).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Raw bytes written to the socket, frames and framing included.
    #[must_use]
    pub fn socket_sent(&self) -> u64 {
        self.socket_sent
    }

    /// Raw bytes read from the socket.
    #[must_use]
    pub fn socket_received(&self) -> u64 {
        self.socket_received
    }

    fn inbound_dir(&self) -> Direction {
        match self.outbound_dir {
            Direction::ClientToServer => Direction::ServerToClient,
            Direction::ServerToClient => Direction::ClientToServer,
        }
    }

    fn bump(&mut self, dir: Direction) {
        if self.last_dir != Some(dir) {
            self.half_trips += 1;
            self.last_dir = Some(dir);
        }
    }

    /// Split one complete frame off the inbound buffer, if present.
    /// `Ok(None)` means more bytes are needed.
    fn take_frame(&mut self) -> Result<Option<FrameBuf>, ChannelError> {
        let Some((payload, wire)) = self.inbound.take_frame()? else {
            return Ok(None);
        };
        self.pending_inbound += wire;
        self.stats.frames += 1;
        self.bump(self.inbound_dir());
        Ok(Some(payload))
    }
}

fn map_read_error(e: &std::io::Error) -> ChannelError {
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => ChannelError::Timeout,
        _ => ChannelError::Disconnected,
    }
}

fn map_write_error(e: &std::io::Error) -> ChannelError {
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => ChannelError::Timeout,
        _ => ChannelError::Disconnected,
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, payload: &FrameBuf, phase: Phase) -> Result<(), ChannelError> {
        // Vectored write of [header, payload]: the payload bytes go to
        // the socket straight from the shared allocation, never copied
        // into a contiguous frame image.
        let header = frame_header(payload);
        let total = header.len() + payload.len();
        let mut written = 0usize;
        while written < total {
            let bufs: [IoSlice<'_>; 2] = if written < header.len() {
                [IoSlice::new(&header[written..]), IoSlice::new(payload)]
            } else {
                [IoSlice::new(&payload[written - header.len()..]), IoSlice::new(&[])]
            };
            match self.stream.write_vectored(&bufs) {
                Ok(0) => return Err(ChannelError::Disconnected),
                Ok(n) => written += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(map_write_error(&e)),
            }
        }
        self.socket_sent += total as u64;
        let wire = frame_wire_size(payload.len());
        self.stats.record(self.outbound_dir, phase, wire);
        self.recorder.record(EventKind::FrameSend {
            dir: self.outbound_dir.into(),
            phase: phase.into(),
            bytes: wire,
        });
        self.stats.frames += 1;
        self.bump(self.outbound_dir);
        Ok(())
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<FrameBuf, ChannelError> {
        // `set_read_timeout` rejects a zero duration; a 1 ms floor keeps
        // degenerate retry configs bounded instead of erroring.
        let timeout = timeout.max(Duration::from_millis(1));
        loop {
            if let Some(payload) = self.take_frame()? {
                return Ok(payload);
            }
            // Each read is individually bounded by the deadline; a peer
            // trickling bytes restarts the clock, a silent one times
            // out after exactly one deadline.
            self.stream.set_read_timeout(Some(timeout)).map_err(|_| ChannelError::Disconnected)?;
            match self.stream.read(&mut self.scratch) {
                Ok(0) => return Err(ChannelError::Disconnected),
                Ok(n) => {
                    self.socket_received += n as u64;
                    self.inbound.extend(&self.scratch[..n]);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(map_read_error(&e)),
            }
        }
    }

    fn attribute_inbound(&mut self, phase: Phase) {
        let bytes = std::mem::take(&mut self.pending_inbound);
        if bytes > 0 {
            self.stats.record(self.inbound_dir(), phase, bytes);
            self.recorder.record(EventKind::FrameRecv {
                dir: self.inbound_dir().into(),
                phase: phase.into(),
                bytes,
            });
        }
    }

    fn note_retransmits(&mut self, frames: u64) {
        self.stats.retransmits += frames;
    }

    fn recorder(&self) -> Recorder {
        self.recorder.clone()
    }

    fn stats(&self) -> TrafficStats {
        let mut out = self.stats.clone();
        // Bytes whose frames were received but never attributed (e.g. a
        // frame that failed its CRC) are still wire reality; charge
        // them to the map phase so totals always match the socket.
        if self.pending_inbound > 0 {
            out.record(self.inbound_dir(), Phase::Map, self.pending_inbound);
        }
        out.roundtrips = u32::try_from(self.half_trips.div_ceil(2)).unwrap_or(u32::MAX);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    fn fb(bytes: &[u8]) -> FrameBuf {
        FrameBuf::copy_from_slice(bytes)
    }

    fn pair() -> (TcpTransport, TcpTransport) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = thread::spawn(move || listener.accept().unwrap().0);
        let client = TcpStream::connect(addr).unwrap();
        let server = join.join().unwrap();
        (TcpTransport::client(client).unwrap(), TcpTransport::server(server).unwrap())
    }

    #[test]
    fn frames_cross_the_socket_byte_exact() {
        let (mut c, mut s) = pair();
        c.send(&fb(b"hello over tcp"), Phase::Setup).unwrap();
        let got = s.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(&got[..], b"hello over tcp");
        s.attribute_inbound(Phase::Setup);
        // Both sides agree on the wire size of what crossed.
        assert_eq!(c.socket_sent(), s.socket_received());
        assert_eq!(c.stats().c2s(Phase::Setup), s.stats().c2s(Phase::Setup));
        assert_eq!(c.stats().total_bytes(), c.socket_sent());
    }

    #[test]
    fn large_frames_reassemble_across_reads() {
        let (c, mut s) = pair();
        let big = vec![0xA5u8; 300_000];
        let big2 = big.clone();
        let join = thread::spawn(move || {
            let mut c = c;
            c.send(&fb(&big2), Phase::Delta).unwrap();
            c.send(&fb(b"tail"), Phase::Delta).unwrap();
            c
        });
        let got = s.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(got, big);
        let tail = s.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(&tail[..], b"tail");
        join.join().unwrap();
    }

    #[test]
    fn silence_times_out_and_hangup_disconnects() {
        let (c, mut s) = pair();
        assert_eq!(s.recv_timeout(Duration::from_millis(50)), Err(ChannelError::Timeout));
        drop(c);
        // After the peer hangs up the read sees EOF.
        assert_eq!(s.recv_timeout(Duration::from_secs(5)), Err(ChannelError::Disconnected));
    }

    #[test]
    fn corrupt_length_word_is_typed_not_oom() {
        let (c, mut s) = pair();
        // 0xFF continuation bytes forever: an impossible length word.
        c.stream.try_clone().unwrap().write_all(&[0xFF; 12]).unwrap();
        let err = s.recv_timeout(Duration::from_secs(5));
        assert!(matches!(err, Err(ChannelError::Corrupt(_))), "{err:?}");
    }

    #[test]
    fn roundtrips_count_direction_reversals() {
        let (mut c, mut s) = pair();
        for _ in 0..3 {
            c.send(&fb(b"ping"), Phase::Map).unwrap();
            s.recv_timeout(Duration::from_secs(5)).unwrap();
            s.attribute_inbound(Phase::Map);
            s.send(&fb(b"pong"), Phase::Map).unwrap();
            c.recv_timeout(Duration::from_secs(5)).unwrap();
            c.attribute_inbound(Phase::Map);
        }
        assert_eq!(c.stats().roundtrips, 3);
        assert_eq!(s.stats().roundtrips, 3);
    }
}
