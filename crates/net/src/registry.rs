//! The collection registry: many named collections behind atomically
//! swappable snapshots.
//!
//! A daemon serves a [`CollectionRegistry`]: a fixed set of named
//! entries (names are fixed at startup; *contents* are not), each
//! holding an `Arc<CollectionSnapshot>` behind a mutex that is held
//! only long enough to clone or replace the `Arc`. Swapping an entry
//! is therefore atomic under live traffic: a connection binds its
//! `Arc` once at handshake time and finishes byte-exact against that
//! snapshot, while every later handshake resolves to the replacement.
//!
//! A swap builds the new snapshot *sharing the old entry's hash
//! cache* ([`CollectionSnapshot::with_cache`]): files untouched by the
//! reload keep their fingerprints, so their memoized map-phase
//! artifacts stay warm across the swap.
//!
//! Reloading from disk is delegated to a caller-supplied [`Loader`]
//! (the CLI passes its corpus directory loader), which keeps this
//! crate free of filesystem-layout knowledge and lets tests inject
//! synthetic trees.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

use msync_core::{CollectionSnapshot, FileEntry};

/// The collection served to clients that name none: protocol-v2
/// clients, and v3 clients whose hello omits the collection token.
pub const DEFAULT_COLLECTION: &str = "default";

/// Reads a directory tree into a collection. Errors are human-readable
/// strings: they travel to admin clients on the wire.
pub type Loader = dyn Fn(&Path) -> Result<Vec<FileEntry>, String> + Send + Sync;

/// A typed registration failure, surfaced at CLI parse time rather
/// than as last-one-wins silence at serve time.
#[derive(Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// The same collection name was registered twice (a repeated
    /// `--collection NAME=...` flag, or a registry-dir entry colliding
    /// with an explicit flag).
    Duplicate(String),
    /// The name is not servable: empty, or containing path separators
    /// or `..` (which would let a hello escape a registry directory).
    InvalidName {
        /// The offending name.
        name: String,
        /// Why it was refused.
        reason: &'static str,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Duplicate(name) => {
                write!(f, "collection {name:?} registered more than once")
            }
            Self::InvalidName { name, reason } => {
                write!(f, "invalid collection name {name:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Validate a collection name as servable: nonempty, printable ASCII
/// without spaces (it rides the hello's first line), no path
/// separators, and no `..` component. Shared by the handshake (a
/// malformed requested name is a typed reject, never a lookup) and the
/// CLI (a malformed `--collection` flag fails at parse time).
///
/// # Errors
/// A static reason string naming the violated rule.
pub fn validate_collection_name(name: &str) -> Result<(), &'static str> {
    if name.is_empty() {
        return Err("name is empty");
    }
    if name.len() > 255 {
        return Err("name longer than 255 bytes");
    }
    if !name.bytes().all(|b| (0x21..0x7f).contains(&b)) {
        return Err("name must be printable ASCII without spaces");
    }
    if name.contains('/') || name.contains('\\') {
        return Err("name must not contain path separators");
    }
    if name == "." || name == ".." {
        return Err("name must not be a relative path component");
    }
    Ok(())
}

struct Entry {
    /// The swap point. Held only to clone or replace the `Arc`.
    snapshot: Mutex<Arc<CollectionSnapshot>>,
    /// Where the collection was loaded from, if it came from disk —
    /// the path [`CollectionRegistry::reload`] re-reads.
    source: Option<PathBuf>,
}

/// The daemon's named collections. Built once via [`RegistryBuilder`];
/// entry *contents* swap atomically at runtime, the name set does not.
pub struct CollectionRegistry {
    entries: BTreeMap<String, Entry>,
    default: String,
    loader: Option<Box<Loader>>,
}

impl CollectionRegistry {
    /// A single-collection registry named [`DEFAULT_COLLECTION`] — the
    /// pre-registry daemon surface, used by [`crate::Daemon::spawn`].
    #[must_use]
    pub fn single(files: Vec<FileEntry>) -> Self {
        let mut b = RegistryBuilder::new();
        // Cannot fail: the default name is valid and the builder is
        // fresh; were it ever to, build() still yields an empty default.
        let _ = b.add(DEFAULT_COLLECTION, files, None);
        b.build()
    }

    /// Resolve a client's requested collection. `None` (a v2 client,
    /// or a v3 hello without the token) means the default collection.
    /// Returns the canonical name and the snapshot the session is
    /// bound to for its whole life.
    #[must_use]
    pub fn resolve(&self, requested: Option<&str>) -> Option<(String, Arc<CollectionSnapshot>)> {
        let name = requested.unwrap_or(&self.default);
        let entry = self.entries.get(name)?;
        let snap = Arc::clone(&entry.snapshot.lock().unwrap_or_else(PoisonError::into_inner));
        Some((name.to_owned(), snap))
    }

    /// The current snapshot of `name`, if registered.
    #[must_use]
    pub fn snapshot(&self, name: &str) -> Option<Arc<CollectionSnapshot>> {
        self.resolve(Some(name)).map(|(_, snap)| snap)
    }

    /// Atomically replace `name`'s snapshot with one built from
    /// `files`, sharing the old snapshot's hash cache so unchanged
    /// files stay warm. In-flight sessions keep the `Arc` they bound
    /// at handshake; only later handshakes see the replacement.
    ///
    /// Returns the new snapshot, or `None` if `name` is not
    /// registered (the name set is fixed at startup).
    pub fn swap(&self, name: &str, files: Vec<FileEntry>) -> Option<Arc<CollectionSnapshot>> {
        let entry = self.entries.get(name)?;
        let mut slot = entry.snapshot.lock().unwrap_or_else(PoisonError::into_inner);
        let next = Arc::new(CollectionSnapshot::with_cache(files, Arc::clone(slot.cache())));
        *slot = Arc::clone(&next);
        Some(next)
    }

    /// Re-read `name`'s source directory through the registry's loader
    /// and [`swap`](Self::swap) the result in. This is the `reload`
    /// admin verb's implementation; errors are the strings sent back
    /// to the admin client.
    ///
    /// # Errors
    /// Unknown name, an entry with no source path, a registry built
    /// without a loader, or a loader failure.
    pub fn reload(&self, name: &str) -> Result<usize, String> {
        let entry = self.entries.get(name).ok_or_else(|| format!("unknown collection {name}"))?;
        let source = entry
            .source
            .as_ref()
            .ok_or_else(|| format!("collection {name} has no source directory"))?;
        let loader =
            self.loader.as_ref().ok_or_else(|| "daemon has no collection loader".to_owned())?;
        let files = loader(source).map_err(|e| format!("reload of {name} failed: {e}"))?;
        let count = files.len();
        self.swap(name, files).ok_or_else(|| format!("unknown collection {name}"))?;
        Ok(count)
    }

    /// The name served when a client requests none.
    #[must_use]
    pub fn default_name(&self) -> &str {
        &self.default
    }

    /// Registered collection names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }
}

/// Accumulates named collections, refusing duplicates and invalid
/// names with typed errors, then freezes into a [`CollectionRegistry`].
pub struct RegistryBuilder {
    entries: BTreeMap<String, Entry>,
    loader: Option<Box<Loader>>,
}

impl Default for RegistryBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl RegistryBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self { entries: BTreeMap::new(), loader: None }
    }

    /// Register `name` serving `files`, remembering `source` as the
    /// directory [`CollectionRegistry::reload`] re-reads.
    ///
    /// # Errors
    /// [`RegistryError::Duplicate`] if `name` is already registered,
    /// [`RegistryError::InvalidName`] if it fails
    /// [`validate_collection_name`].
    pub fn add(
        &mut self,
        name: &str,
        files: Vec<FileEntry>,
        source: Option<PathBuf>,
    ) -> Result<(), RegistryError> {
        validate_collection_name(name)
            .map_err(|reason| RegistryError::InvalidName { name: name.to_owned(), reason })?;
        if self.entries.contains_key(name) {
            return Err(RegistryError::Duplicate(name.to_owned()));
        }
        let snapshot = Mutex::new(Arc::new(CollectionSnapshot::new(files)));
        self.entries.insert(name.to_owned(), Entry { snapshot, source });
        Ok(())
    }

    /// Install the directory loader [`CollectionRegistry::reload`]
    /// uses.
    pub fn loader(
        &mut self,
        loader: impl Fn(&Path) -> Result<Vec<FileEntry>, String> + Send + Sync + 'static,
    ) {
        self.loader = Some(Box::new(loader));
    }

    /// Freeze the name set. The default collection is
    /// [`DEFAULT_COLLECTION`] if registered, else the first name in
    /// sorted order; an empty builder yields an empty default entry so
    /// a nameless daemon still answers hellos.
    #[must_use]
    pub fn build(mut self) -> CollectionRegistry {
        if self.entries.is_empty() {
            let snapshot = Mutex::new(Arc::new(CollectionSnapshot::new(Vec::new())));
            self.entries.insert(DEFAULT_COLLECTION.to_owned(), Entry { snapshot, source: None });
        }
        let default = if self.entries.contains_key(DEFAULT_COLLECTION) {
            DEFAULT_COLLECTION.to_owned()
        } else {
            self.entries.keys().next().cloned().unwrap_or_default()
        };
        CollectionRegistry { entries: self.entries, default, loader: self.loader }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, data: &[u8]) -> FileEntry {
        FileEntry::new(name, data.to_vec())
    }

    #[test]
    fn duplicate_names_are_a_typed_error() {
        let mut b = RegistryBuilder::new();
        b.add("docs", vec![], None).unwrap();
        assert_eq!(b.add("docs", vec![], None), Err(RegistryError::Duplicate("docs".to_owned())));
    }

    #[test]
    fn invalid_names_are_refused() {
        for bad in ["", "a/b", "a\\b", "..", ".", "has space", "tab\tname"] {
            assert!(validate_collection_name(bad).is_err(), "{bad:?} accepted");
            let mut b = RegistryBuilder::new();
            assert!(
                matches!(b.add(bad, vec![], None), Err(RegistryError::InvalidName { .. })),
                "{bad:?} registered"
            );
        }
        for good in ["default", "docs", "web-2026.08", "a.b.c", "x"] {
            assert!(validate_collection_name(good).is_ok(), "{good:?} refused");
        }
    }

    #[test]
    fn resolve_falls_back_to_the_default() {
        let reg = CollectionRegistry::single(vec![entry("a", b"alpha")]);
        let (name, snap) = reg.resolve(None).unwrap();
        assert_eq!(name, DEFAULT_COLLECTION);
        assert_eq!(snap.files().len(), 1);
        assert!(reg.resolve(Some("nope")).is_none());
    }

    #[test]
    fn swap_is_visible_to_new_resolves_but_not_held_arcs() {
        let reg = CollectionRegistry::single(vec![entry("a", b"v1")]);
        let (_, held) = reg.resolve(None).unwrap();
        let swapped =
            reg.swap(DEFAULT_COLLECTION, vec![entry("a", b"v2"), entry("b", b"new")]).unwrap();
        assert_eq!(held.files()[0].data, b"v1");
        assert_eq!(swapped.files().len(), 2);
        let (_, now) = reg.resolve(None).unwrap();
        assert_eq!(now.files()[0].data, b"v2");
        assert!(reg.swap("ghost", vec![]).is_none(), "unknown names cannot be created by swap");
    }

    #[test]
    fn swap_shares_the_hash_cache() {
        let reg = CollectionRegistry::single(vec![entry("a", b"stable bytes")]);
        let before = Arc::clone(reg.snapshot(DEFAULT_COLLECTION).unwrap().cache());
        reg.swap(DEFAULT_COLLECTION, vec![entry("a", b"stable bytes")]).unwrap();
        let after = reg.snapshot(DEFAULT_COLLECTION).unwrap();
        assert!(Arc::ptr_eq(&before, after.cache()));
    }

    #[test]
    fn reload_uses_the_loader_and_source_path() {
        let mut b = RegistryBuilder::new();
        b.add("docs", vec![entry("a", b"old")], Some(PathBuf::from("/virtual/docs"))).unwrap();
        b.add("nosrc", vec![], None).unwrap();
        b.loader(|path| {
            assert_eq!(path, Path::new("/virtual/docs"));
            Ok(vec![entry("a", b"new"), entry("b", b"born")])
        });
        let reg = b.build();
        assert_eq!(reg.reload("docs"), Ok(2));
        assert_eq!(reg.snapshot("docs").unwrap().files()[0].data, b"new");
        assert!(reg.reload("nosrc").unwrap_err().contains("no source"));
        assert!(reg.reload("ghost").unwrap_err().contains("unknown"));
    }

    #[test]
    fn empty_builder_still_serves_an_empty_default() {
        let reg = RegistryBuilder::new().build();
        let (name, snap) = reg.resolve(None).unwrap();
        assert_eq!(name, DEFAULT_COLLECTION);
        assert!(snap.is_empty());
    }
}
