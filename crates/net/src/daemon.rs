//! The `msync serve` daemon: accept, handshake, serve, repeat.
//!
//! The default serve model is an event-driven multiplexer
//! ([`ServeModel::Multiplex`]): a fixed pool of worker threads
//! (default: one per core, `--workers N`) runs nonblocking poll loops
//! over per-session sans-IO machines
//! ([`msync_core::CollectionServeMachine`]), so a slow client on a slow
//! link never holds a thread — it holds a few kilobytes of state. The
//! original thread-per-session model is retained
//! ([`ServeModel::ThreadPerSession`]) as a baseline for the
//! concurrency benchmark.
//!
//! Admission control: `--max-sessions N` caps concurrently admitted
//! sessions. An over-capacity connection is not dropped silently — the
//! daemon waits for its hello and answers with a typed
//! `err server at capacity` refusal, so the client reports *why* it was
//! turned away, and the refusal lands in the daemon's metrics as a
//! failed handshake.
//!
//! Failure semantics per connection: a client that never completes the
//! handshake, violates the protocol, or vanishes mid-sync costs only
//! its own session's state — the error is reported through the
//! daemon's log callback and the listener keeps accepting.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::Duration;

use msync_core::pipeline::{serve_collection_snapshot, ServeOutcome};
use msync_core::FileEntry;
use msync_protocol::{BufferPool, FrameBuf, Phase, RetryPolicy, Transport};
use msync_trace::{EventKind, MetricsSnapshot, Recorder};

use crate::handshake::{
    eval_hello, parse_admin, unknown_collection_reject, AdminCmd, HelloOutcome, NetError,
};
use crate::mux::{worker_loop, Introspect, Shared};
use crate::registry::CollectionRegistry;
use crate::tcp::TcpTransport;

/// Reason string sent on the wire (as `err <reason>`) when admission
/// control turns a connection away.
pub(crate) const REFUSAL_REASON: &str = "server at capacity";

/// Idle buffers the daemon's frame pool retains. The working set is
/// (frames in flight per session) x (active sessions), but almost all
/// of it is *outstanding*, not idle; the idle list only absorbs the
/// churn between session teardowns and the next admissions.
const POOL_MAX_IDLE: usize = 256;

/// How accepted connections are serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeModel {
    /// Event-driven: a fixed worker pool multiplexes all sessions over
    /// nonblocking sockets and sans-IO machines. The default.
    #[default]
    Multiplex,
    /// One dedicated thread per accepted connection, blocking I/O.
    /// Kept as the baseline for the concurrency benchmark.
    ThreadPerSession,
}

/// Daemon-side knobs. The protocol configuration is *not* one of them:
/// the client proposes it in the handshake and the daemon adopts any
/// proposal its own parser validates, so one daemon can serve clients
/// running different experiments.
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// ARQ retry policy for every session.
    pub retry: RetryPolicy,
    /// How long a fresh connection may take to say hello.
    pub handshake_timeout: Duration,
    /// If set, the daemon rewrites this file with a Prometheus-style
    /// rendering of its aggregate metrics after every finished session
    /// (`msync serve --metrics-out FILE`). Best-effort: an unwritable
    /// path never fails a session.
    pub metrics_out: Option<PathBuf>,
    /// Worker threads for the multiplexing model (`--workers N`).
    /// `0` means one per available core.
    pub workers: usize,
    /// Cap on concurrently admitted sessions (`--max-sessions N`).
    /// `None` means unlimited. Excess connections receive a typed
    /// `err server at capacity` handshake refusal.
    pub max_sessions: Option<usize>,
    /// How accepted connections are serviced.
    pub model: ServeModel,
    /// Slow-session watchdog threshold (`--slow-session-ms N`): a
    /// session stuck in one protocol phase longer than this gets one
    /// `slow_session` trace event and one WARN line per stall. `None`
    /// disables the watchdog. Multiplex model only — the blocking
    /// model has no poll loop to run it on.
    pub slow_session: Option<Duration>,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        Self {
            retry: RetryPolicy::default(),
            handshake_timeout: Duration::from_secs(10),
            metrics_out: None,
            workers: 0,
            max_sessions: None,
            model: ServeModel::Multiplex,
            slow_session: None,
        }
    }
}

/// What one connection amounted to, delivered to the log callback.
#[derive(Debug)]
pub struct SessionReport {
    /// Peer address, if the socket could name it.
    pub peer: Option<SocketAddr>,
    /// How the session ended.
    pub result: Result<ServeOutcome, NetError>,
    /// This session's trace metrics (byte grid, handshake and frame
    /// counters, latency histograms), snapshotted at session end.
    pub metrics: MetricsSnapshot,
    /// Canonical name of the collection the session was bound to;
    /// `None` when it never got that far (refusals, failed
    /// handshakes) or was an admin exchange.
    pub collection: Option<String>,
}

/// A running serve daemon. Dropping the handle does **not** stop the
/// listener; call [`Daemon::shutdown`].
pub struct Daemon {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<thread::JoinHandle<()>>,
    metrics: Arc<Mutex<MetricsSnapshot>>,
    per_collection: Arc<Mutex<BTreeMap<String, MetricsSnapshot>>>,
    registry: Arc<CollectionRegistry>,
}

impl Daemon {
    /// Bind `listen` (e.g. `127.0.0.1:0`) and start accepting, serving
    /// `files` as the single default collection.
    ///
    /// `log` receives one [`SessionReport`] per finished connection —
    /// refused ones included.
    ///
    /// # Errors
    /// Binding or inspecting the listener socket.
    pub fn spawn<F>(
        listen: &str,
        files: Vec<FileEntry>,
        opts: DaemonOptions,
        log: F,
    ) -> std::io::Result<Daemon>
    where
        F: Fn(SessionReport) + Send + Sync + 'static,
    {
        Self::spawn_registry(listen, Arc::new(CollectionRegistry::single(files)), opts, log)
    }

    /// [`Daemon::spawn`] over a full [`CollectionRegistry`]: many named
    /// collections, each an atomically swappable snapshot. Keep a clone
    /// of the `Arc` to call [`CollectionRegistry::swap`] /
    /// [`CollectionRegistry::reload`] while the daemon serves.
    ///
    /// # Errors
    /// Binding or inspecting the listener socket.
    pub fn spawn_registry<F>(
        listen: &str,
        registry: Arc<CollectionRegistry>,
        opts: DaemonOptions,
        log: F,
    ) -> std::io::Result<Daemon>
    where
        F: Fn(SessionReport) + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(Mutex::new(MetricsSnapshot::new()));
        let per_collection = Arc::new(Mutex::new(BTreeMap::new()));
        let model = opts.model;
        let workers = worker_count(opts.workers);
        let intro = Arc::new(Introspect::new(
            match model {
                ServeModel::Multiplex => workers,
                ServeModel::ThreadPerSession => 1,
            },
            opts.slow_session,
        ));
        let shared = Arc::new(Shared {
            registry: Arc::clone(&registry),
            opts,
            log,
            metrics: Arc::clone(&metrics),
            per_collection: Arc::clone(&per_collection),
            active: AtomicUsize::new(0),
            stop: Arc::clone(&stop),
            intro,
            pool: BufferPool::new(POOL_MAX_IDLE),
        });
        let mut threads = Vec::new();
        match model {
            ServeModel::Multiplex => {
                listener.set_nonblocking(true)?;
                let listener = Arc::new(listener);
                for _ in 0..workers {
                    let listener = Arc::clone(&listener);
                    let shared = Arc::clone(&shared);
                    threads.push(thread::spawn(move || worker_loop(&listener, &shared)));
                }
            }
            ServeModel::ThreadPerSession => {
                threads.push(thread::spawn(move || accept_loop(&listener, &shared)));
            }
        }
        Ok(Daemon { addr, stop, threads, metrics, per_collection, registry })
    }

    /// The bound address (resolves port 0 to the real port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Aggregate metrics over every finished session so far: exactly
    /// the merge of each [`SessionReport::metrics`] delivered to the
    /// log callback. Sessions still in flight are not included.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// The same finished-session metrics, bucketed by bound collection.
    /// Sessions that never bound one (refusals, failed handshakes,
    /// admin exchanges) are only in the aggregate, so the buckets sum
    /// to [`Daemon::metrics`] exactly when every session bound.
    #[must_use]
    pub fn metrics_by_collection(&self) -> BTreeMap<String, MetricsSnapshot> {
        self.per_collection.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// The registry this daemon serves — the handle for live
    /// [`CollectionRegistry::swap`] / [`CollectionRegistry::reload`].
    #[must_use]
    pub fn registry(&self) -> &Arc<CollectionRegistry> {
        &self.registry
    }

    /// Foreground mode: block on the service threads (which normally
    /// never exit). The CLI `serve` command lives here.
    pub fn wait(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Stop accepting and join the service threads. Multiplex workers
    /// drain their in-flight sessions before exiting; thread-per-session
    /// sessions already in flight run to completion on their own
    /// threads.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // The blocking model's listener sits in accept(); a throwaway
        // connection wakes it so it can observe the flag. The
        // multiplex workers poll the flag anyway.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Resolve the configured worker count: `0` means one per core.
fn worker_count(configured: usize) -> usize {
    if configured > 0 {
        configured
    } else {
        thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(4)
    }
}

/// The thread-per-session accept loop: one blocking service thread per
/// accepted connection, admission included.
fn accept_loop<F>(listener: &TcpListener, shared: &Arc<Shared<F>>)
where
    F: Fn(SessionReport) + Send + Sync + 'static,
{
    loop {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let admitted = shared.try_admit();
        let shared = Arc::clone(shared);
        thread::spawn(move || {
            let peer = stream.peer_addr().ok();
            let (result, session_metrics, collection) = if admitted {
                serve_session(stream, &shared)
            } else {
                refuse_session(stream, &shared.opts)
            };
            if admitted {
                shared.release();
            }
            shared.deliver(SessionReport { peer, result, metrics: session_metrics, collection });
        });
    }
}

/// One connection: handshake (or admin command), then pipelined
/// collection service against the snapshot resolved at handshake time.
/// The session runs under its own trace recorder (on the daemon's
/// shared clock, with a live status slot on the board); whatever it
/// measured is returned alongside the outcome, even on failure.
fn serve_session<F>(
    stream: TcpStream,
    shared: &Shared<F>,
) -> (Result<ServeOutcome, NetError>, MetricsSnapshot, Option<String>)
where
    F: Fn(SessionReport) + Send + Sync + 'static,
{
    let opts = &shared.opts;
    let recorder = Recorder::with_clock(shared.intro.clock.clone());
    let peer_label = stream.peer_addr().map_or_else(|_| "-".to_owned(), |p| p.to_string());
    let mut status = Some(shared.intro.board.register(&peer_label));
    if let Some(handle) = &status {
        recorder.set_status(handle.clone());
    }
    let mut collection = None;
    let result = (|| {
        let mut t = TcpTransport::server(stream).map_err(NetError::Io)?;
        t.set_recorder(recorder.clone());
        let hello = t.recv_timeout(opts.handshake_timeout).map_err(NetError::Channel)?;
        t.attribute_inbound(Phase::Setup);
        if let Some(cmd) = parse_admin(&hello) {
            // An admin exchange is not a sync session: de-list it
            // before rendering, so `sessions` never shows the scrape.
            recorder.clear_status();
            status = None;
            return admin_session(&mut t, cmd, shared, &recorder);
        }
        let (reply, error) = match eval_hello(&hello) {
            HelloOutcome::Accept { cfg, collection: requested, reply } => {
                match shared.registry.resolve(requested.as_deref()) {
                    Some((name, snap)) => {
                        if let Some(handle) = &status {
                            handle.set_collection(&name);
                        }
                        collection = Some(name);
                        t.send(&FrameBuf::from(reply), Phase::Setup).map_err(NetError::Channel)?;
                        recorder.record(EventKind::Handshake { ok: true });
                        return serve_collection_snapshot(&mut t, &snap, &cfg, opts.retry)
                            .map_err(NetError::Sync);
                    }
                    None => unknown_collection_reject(requested.as_deref().unwrap_or_default()),
                }
            }
            HelloOutcome::Reject { reply, error } => (reply, error),
        };
        // Best-effort refusal notice; the connection is being torn
        // down anyway, so a failed send changes nothing.
        let _ = t.send(&FrameBuf::from(reply), Phase::Setup);
        recorder.record(EventKind::Handshake { ok: false });
        Err(error)
    })();
    drop(status);
    (result, recorder.snapshot(), collection)
}

/// Execute one admin command on the blocking path and answer
/// `ok …` / `err …`. The verbs themselves are shared with the
/// multiplexer ([`Shared::execute_admin`]).
fn admin_session<F>(
    t: &mut TcpTransport,
    cmd: Result<AdminCmd, String>,
    shared: &Shared<F>,
    recorder: &Recorder,
) -> Result<ServeOutcome, NetError>
where
    F: Fn(SessionReport) + Send + Sync + 'static,
{
    match cmd.and_then(|cmd| shared.execute_admin(cmd)) {
        Ok((reply, files)) => {
            t.send(&FrameBuf::from(reply.into_bytes()), Phase::Setup).map_err(NetError::Channel)?;
            recorder.record(EventKind::Handshake { ok: true });
            Ok(ServeOutcome { files, sessions: 0, traffic: t.stats() })
        }
        Err(reason) => {
            let _ = t.send(&FrameBuf::from(format!("err {reason}").into_bytes()), Phase::Setup);
            recorder.record(EventKind::Handshake { ok: false });
            Err(NetError::Handshake(format!("admin command failed: {reason}")))
        }
    }
}

/// An over-capacity connection: wait for the hello, answer with the
/// typed refusal, report a failed handshake.
fn refuse_session(
    stream: TcpStream,
    opts: &DaemonOptions,
) -> (Result<ServeOutcome, NetError>, MetricsSnapshot, Option<String>) {
    let recorder = Recorder::system();
    let result = (|| {
        let mut t = TcpTransport::server(stream).map_err(NetError::Io)?;
        t.set_recorder(recorder.clone());
        let _hello = t.recv_timeout(opts.handshake_timeout).map_err(NetError::Channel)?;
        t.attribute_inbound(Phase::Setup);
        // Best-effort: the connection is being torn down anyway.
        let refusal = format!("err {REFUSAL_REASON}").into_bytes();
        let _ = t.send(&FrameBuf::from(refusal), Phase::Setup);
        Err(NetError::Handshake(format!("refused client: {REFUSAL_REASON}")))
    })();
    recorder.record(EventKind::Handshake { ok: false });
    (result, recorder.snapshot(), None)
}
