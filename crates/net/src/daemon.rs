//! The `msync serve` daemon: accept, handshake, serve, repeat.
//!
//! One listener thread accepts connections; each accepted socket gets
//! its own session thread running handshake + pipelined collection
//! service ([`msync_core::pipeline::serve_collection`]), so a slow
//! client on a slow link never blocks the others. The served collection
//! is immutable for the daemon's lifetime and shared read-only across
//! sessions.
//!
//! Failure semantics per connection: a client that never completes the
//! handshake, violates the protocol, or vanishes mid-sync costs only
//! its own session thread — the error is reported through the
//! daemon's log callback and the listener keeps accepting.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::Duration;

use msync_core::pipeline::{serve_collection, ServeOutcome};
use msync_core::FileEntry;
use msync_protocol::RetryPolicy;
use msync_trace::{MetricsSnapshot, Recorder};

use crate::handshake::{server_hello, NetError};
use crate::tcp::TcpTransport;

/// Daemon-side knobs. The protocol configuration is *not* one of them:
/// the client proposes it in the handshake and the daemon adopts any
/// proposal its own parser validates, so one daemon can serve clients
/// running different experiments.
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// ARQ retry policy for every session.
    pub retry: RetryPolicy,
    /// How long a fresh connection may take to say hello.
    pub handshake_timeout: Duration,
    /// If set, the daemon rewrites this file with a Prometheus-style
    /// rendering of its aggregate metrics after every finished session
    /// (`msync serve --metrics-out FILE`). Best-effort: an unwritable
    /// path never fails a session.
    pub metrics_out: Option<PathBuf>,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        Self {
            retry: RetryPolicy::default(),
            handshake_timeout: Duration::from_secs(10),
            metrics_out: None,
        }
    }
}

/// What one connection amounted to, delivered to the log callback.
#[derive(Debug)]
pub struct SessionReport {
    /// Peer address, if the socket could name it.
    pub peer: Option<SocketAddr>,
    /// How the session ended.
    pub result: Result<ServeOutcome, NetError>,
    /// This session's trace metrics (byte grid, handshake and frame
    /// counters, latency histograms), snapshotted at session end.
    pub metrics: MetricsSnapshot,
}

/// A running serve daemon. Dropping the handle does **not** stop the
/// listener; call [`Daemon::shutdown`].
pub struct Daemon {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: thread::JoinHandle<()>,
    metrics: Arc<Mutex<MetricsSnapshot>>,
}

impl Daemon {
    /// Bind `listen` (e.g. `127.0.0.1:0`) and start accepting.
    ///
    /// `log` receives one [`SessionReport`] per finished connection,
    /// from that connection's own thread.
    ///
    /// # Errors
    /// Binding or inspecting the listener socket.
    pub fn spawn<F>(
        listen: &str,
        files: Vec<FileEntry>,
        opts: DaemonOptions,
        log: F,
    ) -> std::io::Result<Daemon>
    where
        F: Fn(SessionReport) + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let shared: Arc<(Vec<FileEntry>, DaemonOptions)> = Arc::new((files, opts));
        let log: Arc<F> = Arc::new(log);
        let metrics = Arc::new(Mutex::new(MetricsSnapshot::new()));
        let metrics_agg = Arc::clone(&metrics);
        let accept_thread = thread::spawn(move || {
            accept_loop(&listener, &stop_flag, &shared, &log, &metrics_agg);
        });
        Ok(Daemon { addr, stop, accept_thread, metrics })
    }

    /// The bound address (resolves port 0 to the real port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Aggregate metrics over every finished session so far: exactly
    /// the merge of each [`SessionReport::metrics`] delivered to the
    /// log callback. Sessions still in flight are not included.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Foreground mode: block on the listener thread (which normally
    /// never exits). The CLI `serve` command lives here.
    pub fn wait(self) {
        let _ = self.accept_thread.join();
    }

    /// Stop accepting and join the listener thread. Sessions already
    /// in flight run to completion on their own threads.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // The listener blocks in accept(); a throwaway connection wakes
        // it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept_thread.join();
    }
}

fn accept_loop<F>(
    listener: &TcpListener,
    stop: &AtomicBool,
    shared: &Arc<(Vec<FileEntry>, DaemonOptions)>,
    log: &Arc<F>,
    metrics: &Arc<Mutex<MetricsSnapshot>>,
) where
    F: Fn(SessionReport) + Send + Sync + 'static,
{
    loop {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let shared = Arc::clone(shared);
        let log = Arc::clone(log);
        let metrics = Arc::clone(metrics);
        thread::spawn(move || {
            let peer = stream.peer_addr().ok();
            let (files, opts) = &*shared;
            let (result, session_metrics) = serve_session(stream, files, opts);
            let aggregate = {
                let mut agg = metrics.lock().unwrap_or_else(PoisonError::into_inner);
                agg.merge(&session_metrics);
                agg.clone()
            };
            if let Some(path) = &opts.metrics_out {
                // Best-effort: metrics must never fail a session.
                let _ = std::fs::write(path, aggregate.render_prometheus());
            }
            log(SessionReport { peer, result, metrics: session_metrics });
        });
    }
}

/// One connection: handshake, then pipelined collection service. The
/// session runs under its own trace recorder; whatever it measured is
/// returned alongside the outcome, even on failure.
fn serve_session(
    stream: TcpStream,
    files: &[FileEntry],
    opts: &DaemonOptions,
) -> (Result<ServeOutcome, NetError>, MetricsSnapshot) {
    let recorder = Recorder::system();
    let result = (|| {
        let mut t = TcpTransport::server(stream).map_err(NetError::Io)?;
        t.set_recorder(recorder.clone());
        let cfg = server_hello(&mut t, opts.handshake_timeout)?;
        serve_collection(&mut t, files, &cfg, opts.retry).map_err(NetError::Sync)
    })();
    (result, recorder.snapshot())
}
