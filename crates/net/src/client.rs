//! The `msync sync --remote` client.
//!
//! Connect, handshake, then run the pipelined collection scheduler
//! ([`msync_core::pipeline::sync_collection_client`]) over the socket.
//! The whole sync is the same code path as the in-memory tests; only
//! the transport differs — including, optionally, the fault injector
//! wrapped *around the real socket*, which is how the soak profiles are
//! exercised against genuine TCP timing.

use std::net::TcpStream;
use std::time::Duration;

use msync_core::pipeline::{sync_collection_client_resumable, PipelineOptions};
use msync_core::{CollectionOutcome, CompletedFile, FileEntry, ProtocolConfig, ResumePlan};
use msync_protocol::{FaultPlan, FaultTransport, FrameBuf, Phase, Transport};
use msync_trace::Recorder;

use crate::handshake::{client_hello_as, NetError};
use crate::tcp::TcpTransport;

/// Client-side knobs for a remote sync.
#[derive(Debug, Clone)]
pub struct RemoteOptions {
    /// Protocol configuration proposed to (and confirmed by) the daemon.
    pub cfg: ProtocolConfig,
    /// Pipelining depth and ARQ retry policy.
    pub pipeline: PipelineOptions,
    /// How long to wait for the daemon's handshake reply.
    pub handshake_timeout: Duration,
    /// Wrap the socket in the deterministic fault injector
    /// (plan, seed). The handshake runs on the clean socket; only the
    /// collection traffic is subjected to faults, mirroring how the
    /// in-memory soak suite treats setup.
    pub fault_wrap: Option<(FaultPlan, u64)>,
    /// Trace recorder attached to the socket transport before the
    /// handshake; off by default. Every charged wire byte, injected
    /// fault, and session milestone lands in it.
    pub recorder: Recorder,
    /// Files to offer the daemon as already complete (from a prior
    /// run's checkpoint or the metadata cache). The daemon confirms or
    /// declines each; declined files sync normally.
    pub resume: Option<ResumePlan>,
    /// Which of the daemon's collections to sync (`msync sync
    /// --collection NAME`). `None` means the daemon's default
    /// collection, which is also all a v2 daemon can serve. An unknown
    /// name surfaces as the typed [`NetError::UnknownCollection`].
    pub collection: Option<String>,
}

impl Default for RemoteOptions {
    fn default() -> Self {
        Self {
            cfg: ProtocolConfig::default(),
            pipeline: PipelineOptions::default(),
            handshake_timeout: Duration::from_secs(10),
            fault_wrap: None,
            recorder: Recorder::off(),
            resume: None,
            collection: None,
        }
    }
}

/// A finished remote sync, with the socket's own byte counters so
/// callers can cross-check accounting against wire reality.
#[derive(Debug)]
pub struct RemoteOutcome {
    /// The collection outcome, exactly as the in-memory path reports it.
    pub outcome: CollectionOutcome,
    /// Raw bytes this client wrote to the socket.
    pub socket_sent: u64,
    /// Raw bytes this client read from the socket.
    pub socket_received: u64,
}

/// Sync the local `old` collection against the daemon at `addr`.
///
/// # Errors
/// [`NetError::Io`] if the connection fails, [`NetError::Handshake`] /
/// [`NetError::Channel`] if the daemon refuses or the wire dies during
/// the hello, [`NetError::Sync`] if the protocol fails afterwards.
pub fn sync_remote(
    addr: &str,
    old: &[FileEntry],
    opts: &RemoteOptions,
) -> Result<RemoteOutcome, NetError> {
    sync_remote_with(addr, old, opts, &mut |_| Ok(()))
}

/// [`sync_remote`] with a durability sink: `on_complete` fires for
/// every file the moment the scheduler finishes it (including files
/// confirmed by a resume verdict), so the caller can apply it
/// atomically and checkpoint it before the session moves on. A sink
/// error aborts the sync as [`NetError::Sync`].
///
/// # Errors
/// As [`sync_remote`].
pub fn sync_remote_with(
    addr: &str,
    old: &[FileEntry],
    opts: &RemoteOptions,
    on_complete: &mut dyn FnMut(&CompletedFile) -> Result<(), String>,
) -> Result<RemoteOutcome, NetError> {
    let stream = TcpStream::connect(addr).map_err(NetError::Io)?;
    let mut t = TcpTransport::client(stream).map_err(NetError::Io)?;
    t.set_recorder(opts.recorder.clone());
    let cfg =
        client_hello_as(&mut t, &opts.cfg, opts.collection.as_deref(), opts.handshake_timeout)?;
    let resume = opts.resume.as_ref();
    match opts.fault_wrap {
        None => {
            let outcome = sync_collection_client_resumable(
                &mut t,
                old,
                &cfg,
                &opts.pipeline,
                resume,
                on_complete,
            )
            .map_err(NetError::Sync)?;
            Ok(RemoteOutcome {
                outcome,
                socket_sent: t.socket_sent(),
                socket_received: t.socket_received(),
            })
        }
        Some((plan, seed)) => {
            let mut faulted = FaultTransport::client(t, &plan, seed);
            let result = sync_collection_client_resumable(
                &mut faulted,
                old,
                &cfg,
                &opts.pipeline,
                resume,
                on_complete,
            );
            let inner = faulted.into_inner();
            let outcome = result.map_err(NetError::Sync)?;
            Ok(RemoteOutcome {
                outcome,
                socket_sent: inner.socket_sent(),
                socket_received: inner.socket_received(),
            })
        }
    }
}

/// Ask the daemon at `addr` to reload the named collection from its
/// source directory (the `reload` admin verb). Returns the file count
/// of the freshly loaded snapshot. The swap is atomic under live
/// traffic: sessions in flight finish against the snapshot they bound
/// at handshake; sessions handshaking after the reload get the new one.
///
/// # Errors
/// [`NetError::Io`] / [`NetError::Channel`] for connection failures,
/// [`NetError::Handshake`] when the daemon answers `err` (unknown
/// name, no source directory, loader failure) or gibberish.
pub fn admin_reload(addr: &str, collection: &str, timeout: Duration) -> Result<usize, NetError> {
    let payload = admin_exchange(addr, &format!("reload {collection}"), timeout)?;
    payload
        .trim()
        .parse::<usize>()
        .map_err(|_| NetError::Handshake("reload reply is not a file count".to_owned()))
}

/// Fetch the daemon's metrics exposition (the `stats` admin verb):
/// Prometheus text plus windowed rate gauges, or — with `json` — the
/// flat JSON rendering of the aggregate counters.
///
/// # Errors
/// As [`admin_reload`].
pub fn admin_stats(addr: &str, json: bool, timeout: Duration) -> Result<String, NetError> {
    admin_exchange(addr, if json { "stats json" } else { "stats" }, timeout)
}

/// Fetch the daemon's live session table (the `sessions` admin verb):
/// one `key=value` line per in-flight session.
///
/// # Errors
/// As [`admin_reload`].
pub fn admin_sessions(addr: &str, timeout: Duration) -> Result<String, NetError> {
    admin_exchange(addr, "sessions", timeout)
}

/// Fetch the daemon's vitals (the `health` admin verb): uptime, worker
/// occupancy, admission headroom, drop and watchdog counters, reload
/// stamps — as `key=value` lines.
///
/// # Errors
/// As [`admin_reload`].
pub fn admin_health(addr: &str, timeout: Duration) -> Result<String, NetError> {
    admin_exchange(addr, "health", timeout)
}

/// One-shot admin exchange: connect, send `msync-admin <verb …>`,
/// return the payload after the `ok` acknowledgement.
fn admin_exchange(addr: &str, verb: &str, timeout: Duration) -> Result<String, NetError> {
    let stream = TcpStream::connect(addr).map_err(NetError::Io)?;
    let mut t = TcpTransport::client(stream).map_err(NetError::Io)?;
    let cmd = format!("msync-admin {verb}");
    t.send(&FrameBuf::from(cmd.into_bytes()), Phase::Setup).map_err(NetError::Channel)?;
    let reply = t.recv_timeout(timeout).map_err(NetError::Channel)?;
    t.attribute_inbound(Phase::Setup);
    let text = std::str::from_utf8(&reply)
        .map_err(|_| NetError::Handshake("admin reply is not UTF-8".to_owned()))?;
    if let Some(reason) = text.strip_prefix("err ") {
        return Err(NetError::Handshake(format!("daemon refused {verb}: {}", reason.trim())));
    }
    // `ok <inline>` (reload) or `ok\n<payload>` (introspection verbs).
    text.strip_prefix("ok")
        .map(|rest| rest.strip_prefix(|c| c == '\n' || c == ' ').unwrap_or(rest).to_owned())
        .ok_or_else(|| NetError::Handshake("admin reply is neither ok nor err".to_owned()))
}

/// Convenience: `Transport::stats` of a finished transport would also
/// carry the accounting, but a faulted run consumes the wrapper, so the
/// outcome snapshots the counters instead.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{Daemon, DaemonOptions};

    #[test]
    fn remote_sync_against_a_live_daemon() {
        let new = vec![
            FileEntry::new("a.txt", b"server copy of a".to_vec()),
            FileEntry::new("b.txt", b"server copy of b".repeat(100)),
        ];
        let daemon =
            Daemon::spawn("127.0.0.1:0", new.clone(), DaemonOptions::default(), |_| {}).unwrap();
        let addr = daemon.local_addr().to_string();
        let old = vec![FileEntry::new("a.txt", b"client copy of a".to_vec())];
        let got = sync_remote(&addr, &old, &RemoteOptions::default()).unwrap();
        daemon.shutdown();
        assert_eq!(got.outcome.files.len(), 2);
        assert_eq!(got.outcome.files[0].data, new[0].data);
        assert_eq!(got.outcome.files[1].data, new[1].data);
        assert_eq!(got.outcome.created, 1);
        assert!(got.socket_sent > 0 && got.socket_received > 0);
    }

    #[test]
    fn resume_offer_confirmed_by_live_daemon() {
        let shared = b"already synced last run ".repeat(200);
        let new = vec![
            FileEntry::new("done.bin", shared.clone()),
            FileEntry::new("todo.bin", b"still to transfer".repeat(50)),
        ];
        let daemon =
            Daemon::spawn("127.0.0.1:0", new.clone(), DaemonOptions::default(), |_| {}).unwrap();
        let addr = daemon.local_addr().to_string();
        let old = vec![FileEntry::new("done.bin", shared.clone())];

        let mut opts = RemoteOptions::default();
        let mut plan = ResumePlan::new(&opts.cfg);
        plan.add("done.bin", msync_hash::file_fingerprint(&shared));
        opts.resume = Some(plan);

        let mut completed = Vec::new();
        let got = sync_remote_with(&addr, &old, &opts, &mut |f| {
            completed.push((f.name.clone(), f.resumed));
            Ok(())
        })
        .unwrap();
        daemon.shutdown();
        assert_eq!(got.outcome.resumed, 1);
        assert_eq!(got.outcome.files.len(), 2);
        assert_eq!(got.outcome.files[0].data, new[0].data);
        assert_eq!(got.outcome.files[1].data, new[1].data);
        assert!(completed.contains(&("done.bin".to_string(), true)));
        assert!(completed.contains(&("todo.bin".to_string(), false)));
    }

    #[test]
    fn refused_handshake_reports_the_reason() {
        let daemon =
            Daemon::spawn("127.0.0.1:0", Vec::new(), DaemonOptions::default(), |_| {}).unwrap();
        let addr = daemon.local_addr().to_string();
        let mut opts = RemoteOptions::default();
        opts.cfg.start_block = 0; // invalid: rejected by validate()
        let err = sync_remote(&addr, &[], &opts);
        daemon.shutdown();
        assert!(matches!(err, Err(NetError::Handshake(_))), "{err:?}");
    }
}
