//! Version/config handshake and the crate's error type.
//!
//! Before any collection traffic, the connecting client sends one frame:
//!
//! ```text
//! msync-net 1\n
//! <parameter file, as rendered by msync_core::params::render>
//! ```
//!
//! The daemon parses and validates the proposed configuration and
//! answers either `ok\n<canonical render>` — the client adopts the
//! echoed canonical form, so both sessions run the byte-identical
//! config — or `err <reason>` and closes. An unknown version or an
//! unparseable parameter file is a rejection, never a guess: the
//! multi-round protocol desynchronizes silently if the two sides
//! disagree on any knob, so the handshake is the one place that is
//! allowed to be pedantic.
//!
//! Handshake frames ride the normal transport and are charged to
//! [`Phase::Setup`], so they show up honestly in `TrafficStats`.

use std::time::Duration;

use msync_core::{params, ProtocolConfig, SyncError};
use msync_protocol::{ChannelError, Phase, Transport};
use msync_trace::EventKind;

/// Version of the wire protocol spoken by this crate. Bumped on any
/// change to the frame codec, the handshake, or the batch schedule.
/// v2 added the resume offer/verdict parts to the roster exchange.
pub const PROTOCOL_VERSION: u32 = 2;

/// Magic line opening every client hello.
const MAGIC: &str = "msync-net";

/// Cap on a handshake frame; a parameter file is a few hundred bytes.
const MAX_HELLO: usize = 64 * 1024;

/// Any failure establishing or running a remote sync.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure (connect, accept, socket options).
    Io(std::io::Error),
    /// The peer spoke, but not this protocol — or refused ours.
    Handshake(String),
    /// Transport failure during the handshake exchange.
    Channel(ChannelError),
    /// The sync protocol itself failed after the handshake.
    Sync(SyncError),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "socket error: {e}"),
            Self::Handshake(why) => write!(f, "handshake failed: {why}"),
            Self::Channel(e) => write!(f, "handshake transport error: {e:?}"),
            Self::Sync(e) => write!(f, "sync failed: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Client half: propose `cfg`, adopt the server's canonical echo.
///
/// # Errors
/// [`NetError::Channel`] if the wire fails, [`NetError::Handshake`] if
/// the server rejects the proposal or answers gibberish.
pub fn client_hello(
    t: &mut dyn Transport,
    cfg: &ProtocolConfig,
    timeout: Duration,
) -> Result<ProtocolConfig, NetError> {
    let rec = t.recorder();
    let result = client_hello_inner(t, cfg, timeout);
    rec.record(EventKind::Handshake { ok: result.is_ok() });
    result
}

fn client_hello_inner(
    t: &mut dyn Transport,
    cfg: &ProtocolConfig,
    timeout: Duration,
) -> Result<ProtocolConfig, NetError> {
    let hello = format!("{MAGIC} {PROTOCOL_VERSION}\n{}", params::render(cfg));
    t.send(hello.as_bytes(), Phase::Setup).map_err(NetError::Channel)?;
    let reply = t.recv_timeout(timeout).map_err(NetError::Channel)?;
    t.attribute_inbound(Phase::Setup);
    let text = text_of(&reply)?;
    if let Some(reason) = text.strip_prefix("err ") {
        return Err(NetError::Handshake(format!("server refused: {}", reason.trim())));
    }
    let Some(rendered) = text.strip_prefix("ok\n") else {
        return Err(NetError::Handshake("server reply is neither ok nor err".to_owned()));
    };
    let agreed = params::parse(rendered)
        .map_err(|e| NetError::Handshake(format!("server echoed a bad config: {e}")))?;
    Ok(agreed)
}

/// Server half: receive a hello, validate it, answer ok or err.
///
/// Returns the agreed configuration. A rejected client gets a typed
/// `err` line before the error is returned, so it can report *why*
/// instead of seeing a hangup.
///
/// # Errors
/// [`NetError::Channel`] if the wire fails, [`NetError::Handshake`] if
/// the hello is not this protocol or proposes an invalid config.
pub fn server_hello(t: &mut dyn Transport, timeout: Duration) -> Result<ProtocolConfig, NetError> {
    let rec = t.recorder();
    let result = server_hello_inner(t, timeout);
    rec.record(EventKind::Handshake { ok: result.is_ok() });
    result
}

fn server_hello_inner(
    t: &mut dyn Transport,
    timeout: Duration,
) -> Result<ProtocolConfig, NetError> {
    let hello = t.recv_timeout(timeout).map_err(NetError::Channel)?;
    t.attribute_inbound(Phase::Setup);
    match eval_hello(&hello) {
        HelloOutcome::Accept { cfg, reply } => {
            t.send(&reply, Phase::Setup).map_err(NetError::Channel)?;
            Ok(cfg)
        }
        HelloOutcome::Reject { reply, error } => {
            // Best-effort refusal notice; the connection is being torn
            // down anyway, so a failed send changes nothing.
            let _ = t.send(&reply, Phase::Setup);
            Err(error)
        }
    }
}

/// The server's verdict on one client hello frame, pure of any I/O.
///
/// Both daemon serve models — the blocking thread-per-session path and
/// the nonblocking multiplexer — evaluate hellos through this one
/// function, so acceptance rules and refusal wording cannot drift.
pub(crate) enum HelloOutcome {
    /// The proposal parsed and validated: send `reply` (the canonical
    /// `ok` echo) and run the session under `cfg`.
    Accept {
        /// The agreed configuration (canonical form of the proposal).
        cfg: ProtocolConfig,
        /// The `ok\n<render>` frame to send back.
        reply: Vec<u8>,
    },
    /// The hello is not this protocol or proposes an invalid config:
    /// best-effort send `reply` (a typed `err` line), then fail the
    /// session with `error`.
    Reject {
        /// The `err <reason>` frame to send back.
        reply: Vec<u8>,
        /// The error the session ends with.
        error: NetError,
    },
}

/// Evaluate one client hello payload. Pure: no transport access.
pub(crate) fn eval_hello(hello: &[u8]) -> HelloOutcome {
    let reject = |reason: &str, error: NetError| HelloOutcome::Reject {
        reply: format!("err {reason}").into_bytes(),
        error,
    };
    let text = match text_of(hello) {
        Ok(text) => text,
        Err(e) => return reject("hello is not text", e),
    };
    let (magic_line, params_text) = text.split_once('\n').unwrap_or((text, ""));
    let mut words = magic_line.split_whitespace();
    if words.next() != Some(MAGIC) {
        return reject(
            "unknown magic",
            NetError::Handshake("client hello has unknown magic".to_owned()),
        );
    }
    let version = words.next().and_then(|v| v.parse::<u32>().ok());
    if version != Some(PROTOCOL_VERSION) {
        return reject(
            "unsupported version",
            NetError::Handshake(format!(
                "client speaks version {version:?}, this daemon speaks {PROTOCOL_VERSION}"
            )),
        );
    }
    let cfg = match params::parse(params_text).and_then(|c| c.validate().map(|()| c)) {
        Ok(cfg) => cfg,
        Err(e) => {
            return reject(
                &format!("bad config: {e}"),
                NetError::Handshake(format!("client proposed a bad config: {e}")),
            );
        }
    };
    let reply = format!("ok\n{}", params::render(&cfg)).into_bytes();
    HelloOutcome::Accept { cfg, reply }
}

fn text_of(payload: &[u8]) -> Result<&str, NetError> {
    if payload.len() > MAX_HELLO {
        return Err(NetError::Handshake("hello frame too large".to_owned()));
    }
    std::str::from_utf8(payload).map_err(|_| NetError::Handshake("hello is not UTF-8".to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use msync_protocol::Endpoint;
    use std::thread;

    const T: Duration = Duration::from_secs(5);

    #[test]
    fn agreeing_sides_converge_on_one_config() {
        let (mut c, mut s) = Endpoint::pair();
        let cfg = ProtocolConfig { start_block: 1 << 13, ..Default::default() };
        let want = cfg.clone();
        let server = thread::spawn(move || server_hello(&mut s, T).unwrap());
        let got = client_hello(&mut c, &cfg, T).unwrap();
        let served = server.join().unwrap();
        assert_eq!(got, want);
        assert_eq!(served, want);
    }

    #[test]
    fn wrong_magic_is_refused_with_a_reason() {
        let (mut c, mut s) = Endpoint::pair();
        let server = thread::spawn(move || server_hello(&mut s, T));
        c.send(b"rsync 31".to_vec());
        let reply = Transport::recv_timeout(&mut c, T).unwrap();
        assert!(reply.starts_with(b"err "), "{reply:?}");
        assert!(matches!(server.join().unwrap(), Err(NetError::Handshake(_))));
    }

    #[test]
    fn version_mismatch_is_refused() {
        let (mut c, mut s) = Endpoint::pair();
        let server = thread::spawn(move || server_hello(&mut s, T));
        let hello = format!("{MAGIC} 999\n");
        Transport::send(&mut c, hello.as_bytes(), Phase::Setup).unwrap();
        let reply = Transport::recv_timeout(&mut c, T).unwrap();
        assert_eq!(&reply[..3], b"err");
        assert!(matches!(server.join().unwrap(), Err(NetError::Handshake(_))));
    }

    #[test]
    fn bad_config_is_refused() {
        let (mut c, mut s) = Endpoint::pair();
        let server = thread::spawn(move || server_hello(&mut s, T));
        let hello = format!("{MAGIC} {PROTOCOL_VERSION}\nstart_block = nope");
        Transport::send(&mut c, hello.as_bytes(), Phase::Setup).unwrap();
        let reply = Transport::recv_timeout(&mut c, T).unwrap();
        assert!(reply.starts_with(b"err "), "{reply:?}");
        assert!(matches!(server.join().unwrap(), Err(NetError::Handshake(_))));
    }
}
