//! Version/config handshake and the crate's error type.
//!
//! Before any collection traffic, the connecting client sends one frame:
//!
//! ```text
//! msync-net 3 <collection>\n
//! <parameter file, as rendered by msync_core::params::render>
//! ```
//!
//! The daemon parses and validates the proposed configuration and
//! answers either `ok\n<canonical render>` — the client adopts the
//! echoed canonical form, so both sessions run the byte-identical
//! config — or `err <reason>` and closes. An unknown version or an
//! unparseable parameter file is a rejection, never a guess: the
//! multi-round protocol desynchronizes silently if the two sides
//! disagree on any knob, so the handshake is the one place that is
//! allowed to be pedantic.
//!
//! The `<collection>` token (v3) names which of the daemon's
//! registered collections this session syncs; it is optional, and a
//! v2 hello (no token possible) is still accepted — both mean the
//! registry's default collection, so old clients keep working against
//! a multi-collection daemon. A name the daemon does not serve gets
//! the typed `err unknown-collection <name>` refusal, which the
//! client surfaces as [`NetError::UnknownCollection`] rather than a
//! generic handshake failure.
//!
//! Handshake frames ride the normal transport and are charged to
//! [`Phase::Setup`], so they show up honestly in `TrafficStats`.

use std::time::Duration;

use msync_core::{params, ProtocolConfig, SyncError};
use msync_protocol::{ChannelError, FrameBuf, Phase, Transport};
use msync_trace::EventKind;

use crate::registry::validate_collection_name;

/// Version of the wire protocol spoken by this crate. Bumped on any
/// change to the frame codec, the handshake, or the batch schedule.
/// v2 added the resume offer/verdict parts to the roster exchange;
/// v3 added the optional collection-name token to the hello line.
pub const PROTOCOL_VERSION: u32 = 3;

/// Oldest client version this daemon still accepts. v2 differs only
/// in never naming a collection, which maps onto "serve the default".
pub const MIN_PROTOCOL_VERSION: u32 = 2;

/// Magic line opening every client hello.
const MAGIC: &str = "msync-net";

/// Reason token opening an unknown-collection refusal line.
const UNKNOWN_COLLECTION: &str = "unknown-collection";

/// Cap on a handshake frame; a parameter file is a few hundred bytes.
const MAX_HELLO: usize = 64 * 1024;

/// Any failure establishing or running a remote sync.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure (connect, accept, socket options).
    Io(std::io::Error),
    /// The peer spoke, but not this protocol — or refused ours.
    Handshake(String),
    /// The daemon does not serve the requested collection. Typed so a
    /// caller can degrade gracefully (fall back to the default
    /// collection, list alternatives, retry later) instead of treating
    /// it as protocol gibberish.
    UnknownCollection(String),
    /// Transport failure during the handshake exchange.
    Channel(ChannelError),
    /// The sync protocol itself failed after the handshake.
    Sync(SyncError),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "socket error: {e}"),
            Self::Handshake(why) => write!(f, "handshake failed: {why}"),
            Self::UnknownCollection(name) => {
                write!(f, "daemon does not serve collection {name:?}")
            }
            Self::Channel(e) => write!(f, "handshake transport error: {e:?}"),
            Self::Sync(e) => write!(f, "sync failed: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Client half: propose `cfg` for the daemon's default collection and
/// adopt the server's canonical echo.
///
/// # Errors
/// [`NetError::Channel`] if the wire fails, [`NetError::Handshake`] if
/// the server rejects the proposal or answers gibberish.
pub fn client_hello(
    t: &mut dyn Transport,
    cfg: &ProtocolConfig,
    timeout: Duration,
) -> Result<ProtocolConfig, NetError> {
    client_hello_as(t, cfg, None, timeout)
}

/// [`client_hello`] naming a collection: `Some(name)` asks the daemon
/// for that registry entry; `None` means its default collection.
///
/// # Errors
/// As [`client_hello`], plus [`NetError::UnknownCollection`] when the
/// daemon answers the typed `err unknown-collection` refusal.
pub fn client_hello_as(
    t: &mut dyn Transport,
    cfg: &ProtocolConfig,
    collection: Option<&str>,
    timeout: Duration,
) -> Result<ProtocolConfig, NetError> {
    let rec = t.recorder();
    let result = client_hello_inner(t, cfg, collection, timeout);
    rec.record(EventKind::Handshake { ok: result.is_ok() });
    result
}

fn client_hello_inner(
    t: &mut dyn Transport,
    cfg: &ProtocolConfig,
    collection: Option<&str>,
    timeout: Duration,
) -> Result<ProtocolConfig, NetError> {
    let hello = match collection {
        Some(name) => format!("{MAGIC} {PROTOCOL_VERSION} {name}\n{}", params::render(cfg)),
        None => format!("{MAGIC} {PROTOCOL_VERSION}\n{}", params::render(cfg)),
    };
    t.send(&FrameBuf::from(hello.into_bytes()), Phase::Setup).map_err(NetError::Channel)?;
    let reply = t.recv_timeout(timeout).map_err(NetError::Channel)?;
    t.attribute_inbound(Phase::Setup);
    let text = text_of(&reply)?;
    if let Some(reason) = text.strip_prefix("err ") {
        if let Some(name) = reason.trim().strip_prefix(UNKNOWN_COLLECTION) {
            return Err(NetError::UnknownCollection(name.trim().to_owned()));
        }
        return Err(NetError::Handshake(format!("server refused: {}", reason.trim())));
    }
    let Some(rendered) = text.strip_prefix("ok\n") else {
        return Err(NetError::Handshake("server reply is neither ok nor err".to_owned()));
    };
    let agreed = params::parse(rendered)
        .map_err(|e| NetError::Handshake(format!("server echoed a bad config: {e}")))?;
    Ok(agreed)
}

/// Server half: receive a hello, validate it, answer ok or err.
///
/// Returns the agreed configuration. A rejected client gets a typed
/// `err` line before the error is returned, so it can report *why*
/// instead of seeing a hangup. This transport-level half accepts any
/// syntactically valid collection name — resolving the name against a
/// registry (and refusing unknown ones) is the daemon's job, which is
/// why the daemon paths consume [`eval_hello`] directly.
///
/// # Errors
/// [`NetError::Channel`] if the wire fails, [`NetError::Handshake`] if
/// the hello is not this protocol or proposes an invalid config.
pub fn server_hello(t: &mut dyn Transport, timeout: Duration) -> Result<ProtocolConfig, NetError> {
    let rec = t.recorder();
    let hello = match t.recv_timeout(timeout) {
        Ok(hello) => hello,
        Err(e) => {
            rec.record(EventKind::Handshake { ok: false });
            return Err(NetError::Channel(e));
        }
    };
    t.attribute_inbound(Phase::Setup);
    match eval_hello(&hello) {
        HelloOutcome::Accept { cfg, reply, .. } => {
            match t.send(&FrameBuf::from(reply), Phase::Setup) {
                Ok(()) => {
                    rec.record(EventKind::Handshake { ok: true });
                    Ok(cfg)
                }
                Err(e) => {
                    rec.record(EventKind::Handshake { ok: false });
                    Err(NetError::Channel(e))
                }
            }
        }
        HelloOutcome::Reject { reply, error } => {
            // Best-effort refusal notice; the connection is being torn
            // down anyway, so a failed send changes nothing.
            let _ = t.send(&FrameBuf::from(reply), Phase::Setup);
            rec.record(EventKind::Handshake { ok: false });
            Err(error)
        }
    }
}

/// The server's verdict on one client hello frame, pure of any I/O.
///
/// Both daemon serve models — the blocking thread-per-session path and
/// the nonblocking multiplexer — evaluate hellos through this one
/// function, so acceptance rules and refusal wording cannot drift.
pub(crate) enum HelloOutcome {
    /// The proposal parsed and validated: send `reply` (the canonical
    /// `ok` echo) and run the session under `cfg`.
    Accept {
        /// The agreed configuration (canonical form of the proposal).
        cfg: ProtocolConfig,
        /// The collection the client asked for; `None` (v2 client, or
        /// v3 without the token) means the registry's default. The
        /// daemon must still resolve this against its registry and
        /// answer [`unknown_collection_reject`] on a miss — *this*
        /// reply is only correct once the name resolves.
        collection: Option<String>,
        /// The `ok\n<render>` frame to send back.
        reply: Vec<u8>,
    },
    /// The hello is not this protocol or proposes an invalid config:
    /// best-effort send `reply` (a typed `err` line), then fail the
    /// session with `error`.
    Reject {
        /// The `err <reason>` frame to send back.
        reply: Vec<u8>,
        /// The error the session ends with.
        error: NetError,
    },
}

/// The typed refusal for a syntactically fine collection name the
/// registry does not hold: the `err` frame to send and the error the
/// session ends with. Shared by both serve models so the wire token
/// and the error type cannot drift.
pub(crate) fn unknown_collection_reject(name: &str) -> (Vec<u8>, NetError) {
    (
        format!("err {UNKNOWN_COLLECTION} {name}").into_bytes(),
        NetError::UnknownCollection(name.to_owned()),
    )
}

/// Evaluate one client hello payload. Pure: no transport access, no
/// registry access (the requested collection comes back unresolved).
pub(crate) fn eval_hello(hello: &[u8]) -> HelloOutcome {
    let reject = |reason: &str, error: NetError| HelloOutcome::Reject {
        reply: format!("err {reason}").into_bytes(),
        error,
    };
    let text = match text_of(hello) {
        Ok(text) => text,
        Err(e) => return reject("hello is not text", e),
    };
    let (magic_line, params_text) = text.split_once('\n').unwrap_or((text, ""));
    let mut words = magic_line.split_whitespace();
    if words.next() != Some(MAGIC) {
        return reject(
            "unknown magic",
            NetError::Handshake("client hello has unknown magic".to_owned()),
        );
    }
    let version = words.next().and_then(|v| v.parse::<u32>().ok());
    match version {
        Some(v) if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&v) => {}
        _ => {
            return reject(
                "unsupported version",
                NetError::Handshake(format!(
                    "client speaks version {version:?}, this daemon speaks \
                     {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION}"
                )),
            );
        }
    }
    // The collection token exists only from v3 on; a v2 line carries
    // nothing after the version, and anything there anyway is a
    // malformed hello rather than a name to guess at.
    let collection = match version {
        Some(v) if v >= 3 => {
            let token = words.next();
            // The grammar allows exactly one token after the version;
            // anything beyond it is a name with whitespace in it.
            let why = match token {
                Some(_) if words.next().is_some() => Some("contains whitespace"),
                Some(name) => validate_collection_name(name).err(),
                None => None,
            };
            if let Some(why) = why {
                return reject(
                    &format!("bad collection name: {why}"),
                    NetError::Handshake(format!(
                        "client requested an invalid collection name: {why}"
                    )),
                );
            }
            token.map(str::to_owned)
        }
        _ => None,
    };
    let cfg = match params::parse(params_text).and_then(|c| c.validate().map(|()| c)) {
        Ok(cfg) => cfg,
        Err(e) => {
            return reject(
                &format!("bad config: {e}"),
                NetError::Handshake(format!("client proposed a bad config: {e}")),
            );
        }
    };
    let reply = format!("ok\n{}", params::render(&cfg)).into_bytes();
    HelloOutcome::Accept { cfg, collection, reply }
}

fn text_of(payload: &[u8]) -> Result<&str, NetError> {
    if payload.len() > MAX_HELLO {
        return Err(NetError::Handshake("hello frame too large".to_owned()));
    }
    std::str::from_utf8(payload).map_err(|_| NetError::Handshake("hello is not UTF-8".to_owned()))
}

/// Magic opening an admin frame. Admin commands ride the same
/// first-frame slot as a client hello; the daemon dispatches on the
/// magic word.
pub(crate) const ADMIN_MAGIC: &str = "msync-admin";

/// A parsed admin command.
#[derive(Debug)]
pub(crate) enum AdminCmd {
    /// `msync-admin reload <collection>`: re-read the named
    /// collection's source directory and swap the snapshot in.
    Reload(String),
    /// `msync-admin stats [json]`: the daemon-wide metrics exposition
    /// (Prometheus text plus windowed rate gauges, or the flat JSON
    /// rendering with the `json` token).
    Stats {
        /// Whether the reply is the flat JSON rendering instead of
        /// Prometheus text.
        json: bool,
    },
    /// `msync-admin sessions`: the live session table, one
    /// `key=value` line per in-flight session.
    Sessions,
    /// `msync-admin health`: daemon vitals — uptime, worker occupancy,
    /// admission headroom, drop/watchdog counters, reload stamps.
    Health,
}

/// Classify a first frame as an admin command. `None` means the frame
/// is not admin-shaped at all (evaluate it as a hello instead);
/// `Some(Err(reason))` is a malformed admin frame, answered with
/// `err <reason>`.
pub(crate) fn parse_admin(frame: &[u8]) -> Option<Result<AdminCmd, String>> {
    let text = std::str::from_utf8(frame).ok()?;
    let mut words = text.split_whitespace();
    if words.next() != Some(ADMIN_MAGIC) {
        return None;
    }
    let cmd = match words.next() {
        Some("reload") => match words.next() {
            Some(name) => match validate_collection_name(name) {
                Ok(()) => Ok(AdminCmd::Reload(name.to_owned())),
                Err(why) => Err(format!("bad collection name: {why}")),
            },
            None => Err("reload needs a collection name".to_owned()),
        },
        Some("stats") => match words.next() {
            None => Ok(AdminCmd::Stats { json: false }),
            Some("json") => Ok(AdminCmd::Stats { json: true }),
            Some(other) => Err(format!("stats takes only `json`, not {other}")),
        },
        Some("sessions") => Ok(AdminCmd::Sessions),
        Some("health") => Ok(AdminCmd::Health),
        Some(other) => Err(format!("unknown admin verb {other}")),
        None => Err("empty admin command".to_owned()),
    };
    // Every verb's argument list is closed above; trailing tokens are
    // a malformed command, not an extension point.
    Some(match cmd {
        Ok(cmd) if words.next().is_some() => {
            Err(format!("trailing tokens after admin verb {}", cmd.verb()))
        }
        other => other,
    })
}

impl AdminCmd {
    /// The wire verb this command was parsed from.
    pub(crate) fn verb(&self) -> &'static str {
        match self {
            AdminCmd::Reload(_) => "reload",
            AdminCmd::Stats { .. } => "stats",
            AdminCmd::Sessions => "sessions",
            AdminCmd::Health => "health",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msync_protocol::Endpoint;
    use std::thread;

    const T: Duration = Duration::from_secs(5);

    #[test]
    fn agreeing_sides_converge_on_one_config() {
        let (mut c, mut s) = Endpoint::pair();
        let cfg = ProtocolConfig { start_block: 1 << 13, ..Default::default() };
        let want = cfg.clone();
        let server = thread::spawn(move || server_hello(&mut s, T).unwrap());
        let got = client_hello(&mut c, &cfg, T).unwrap();
        let served = server.join().unwrap();
        assert_eq!(got, want);
        assert_eq!(served, want);
    }

    #[test]
    fn wrong_magic_is_refused_with_a_reason() {
        let (mut c, mut s) = Endpoint::pair();
        let server = thread::spawn(move || server_hello(&mut s, T));
        c.send(b"rsync 31".to_vec());
        let reply = Transport::recv_timeout(&mut c, T).unwrap();
        assert!(reply.starts_with(b"err "), "{reply:?}");
        assert!(matches!(server.join().unwrap(), Err(NetError::Handshake(_))));
    }

    #[test]
    fn version_mismatch_is_refused() {
        let (mut c, mut s) = Endpoint::pair();
        let server = thread::spawn(move || server_hello(&mut s, T));
        let hello = format!("{MAGIC} 999\n");
        Transport::send(&mut c, &FrameBuf::from(hello.into_bytes()), Phase::Setup).unwrap();
        let reply = Transport::recv_timeout(&mut c, T).unwrap();
        assert_eq!(&reply[..3], b"err");
        assert!(matches!(server.join().unwrap(), Err(NetError::Handshake(_))));
    }

    #[test]
    fn bad_config_is_refused() {
        let (mut c, mut s) = Endpoint::pair();
        let server = thread::spawn(move || server_hello(&mut s, T));
        let hello = format!("{MAGIC} {PROTOCOL_VERSION}\nstart_block = nope");
        Transport::send(&mut c, &FrameBuf::from(hello.into_bytes()), Phase::Setup).unwrap();
        let reply = Transport::recv_timeout(&mut c, T).unwrap();
        assert!(reply.starts_with(b"err "), "{reply:?}");
        assert!(matches!(server.join().unwrap(), Err(NetError::Handshake(_))));
    }

    #[test]
    fn v2_hello_is_accepted_with_no_collection() {
        let cfg = ProtocolConfig::default();
        let hello = format!("{MAGIC} 2\n{}", params::render(&cfg));
        match eval_hello(hello.as_bytes()) {
            HelloOutcome::Accept { collection, .. } => assert_eq!(collection, None),
            HelloOutcome::Reject { error, .. } => panic!("v2 hello rejected: {error}"),
        }
    }

    #[test]
    fn v3_hello_carries_the_collection_name() {
        let cfg = ProtocolConfig::default();
        let hello = format!("{MAGIC} {PROTOCOL_VERSION} photos\n{}", params::render(&cfg));
        match eval_hello(hello.as_bytes()) {
            HelloOutcome::Accept { collection, .. } => {
                assert_eq!(collection.as_deref(), Some("photos"));
            }
            HelloOutcome::Reject { error, .. } => panic!("v3 hello rejected: {error}"),
        }
    }

    #[test]
    fn v3_hello_without_a_token_means_default() {
        let cfg = ProtocolConfig::default();
        let hello = format!("{MAGIC} {PROTOCOL_VERSION}\n{}", params::render(&cfg));
        match eval_hello(hello.as_bytes()) {
            HelloOutcome::Accept { collection, .. } => assert_eq!(collection, None),
            HelloOutcome::Reject { error, .. } => panic!("bare v3 hello rejected: {error}"),
        }
    }

    #[test]
    fn traversal_and_garbage_collection_names_are_refused() {
        let cfg = ProtocolConfig::default();
        for bad in ["../etc", "a/b", "a\\b", "..", ".", "has space"] {
            let hello = format!("{MAGIC} {PROTOCOL_VERSION} {bad}\n{}", params::render(&cfg));
            match eval_hello(hello.as_bytes()) {
                HelloOutcome::Reject { reply, .. } => {
                    let text = String::from_utf8(reply).unwrap();
                    assert!(text.starts_with("err bad collection name"), "{bad}: {text}");
                }
                HelloOutcome::Accept { .. } => panic!("accepted bad name {bad:?}"),
            }
        }
    }

    #[test]
    fn unknown_collection_reply_parses_into_the_typed_error() {
        let (mut c, mut s) = Endpoint::pair();
        let client = thread::spawn(move || {
            client_hello_as(&mut c, &ProtocolConfig::default(), Some("ghost"), T)
        });
        let hello = Transport::recv_timeout(&mut s, T).unwrap();
        match eval_hello(&hello) {
            HelloOutcome::Accept { collection, .. } => {
                assert_eq!(collection.as_deref(), Some("ghost"));
            }
            HelloOutcome::Reject { error, .. } => panic!("{error}"),
        }
        let (reply, _) = unknown_collection_reject("ghost");
        Transport::send(&mut s, &FrameBuf::from(reply), Phase::Setup).unwrap();
        match client.join().unwrap() {
            Err(NetError::UnknownCollection(name)) => assert_eq!(name, "ghost"),
            other => panic!("expected UnknownCollection, got {other:?}"),
        }
    }

    #[test]
    fn admin_frames_parse_and_non_admin_frames_pass_through() {
        assert!(parse_admin(b"msync-net 3 x\n").is_none());
        assert!(parse_admin(b"").is_none());
        match parse_admin(b"msync-admin reload photos") {
            Some(Ok(AdminCmd::Reload(name))) => assert_eq!(name, "photos"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(parse_admin(b"msync-admin reload ../x"), Some(Err(_))));
        assert!(matches!(parse_admin(b"msync-admin reload"), Some(Err(_))));
        assert!(matches!(parse_admin(b"msync-admin explode y"), Some(Err(_))));
    }

    #[test]
    fn introspection_verbs_parse_and_refuse_trailing_tokens() {
        assert!(matches!(
            parse_admin(b"msync-admin stats"),
            Some(Ok(AdminCmd::Stats { json: false }))
        ));
        assert!(matches!(
            parse_admin(b"msync-admin stats json"),
            Some(Ok(AdminCmd::Stats { json: true }))
        ));
        assert!(matches!(parse_admin(b"msync-admin sessions"), Some(Ok(AdminCmd::Sessions))));
        assert!(matches!(parse_admin(b"msync-admin health"), Some(Ok(AdminCmd::Health))));
        for bad in [
            b"msync-admin stats yaml".as_slice(),
            b"msync-admin stats json extra",
            b"msync-admin sessions now",
            b"msync-admin health check",
            b"msync-admin reload photos twice",
        ] {
            assert!(matches!(parse_admin(bad), Some(Err(_))), "{:?}", bad);
        }
    }
}
