//! Real network transport for msync.
//!
//! Everything below `msync-core` is written against the
//! [`Transport`](msync_protocol::Transport) trait; this crate supplies
//! the backend that makes the paper's scenario — maintaining a large
//! replicated collection over a slow wide-area link — runnable against
//! an actual socket:
//!
//! * [`tcp::TcpTransport`] — a TCP-backed `Transport` speaking the same
//!   LEB128+CRC32 frame codec as the in-memory channel, with mandatory
//!   read deadlines and typed [`ChannelError`](msync_protocol::ChannelError)
//!   mapping for socket failures, plus raw socket byte counters so wire
//!   reality can be cross-checked against `TrafficStats` accounting.
//! * [`daemon`] — the `msync serve` side: an event-driven multiplexer
//!   running many concurrent sessions as sans-IO machines over
//!   nonblocking sockets on a fixed worker pool (with the original
//!   thread-per-session model retained as a benchmark baseline), a
//!   version/config handshake, and admission control with typed
//!   capacity refusals.
//! * [`client`] — the `msync sync --remote` side: connect, handshake,
//!   then run the pipelined collection scheduler
//!   ([`msync_core::pipeline`]) against the daemon, optionally with the
//!   fault injector wrapped around the socket.
//!
//! Because both backends implement the same trait, the ARQ recovery
//! machinery, the fault injector, and the collection pipeline are
//! byte-for-byte the same code over loopback TCP as over the in-memory
//! test channel.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod daemon;
pub mod handshake;
mod mux;
pub mod registry;
pub mod tcp;

pub use client::{
    admin_health, admin_reload, admin_sessions, admin_stats, sync_remote, sync_remote_with,
    RemoteOptions, RemoteOutcome,
};
pub use daemon::{Daemon, DaemonOptions, ServeModel, SessionReport};
pub use handshake::{NetError, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
pub use registry::{
    validate_collection_name, CollectionRegistry, RegistryBuilder, RegistryError,
    DEFAULT_COLLECTION,
};
pub use tcp::TcpTransport;
