//! MD4 (RFC 1320).
//!
//! rsync's strong per-block checksum is MD4 (the paper: "the reliable
//! checksum is implemented using MD4, but only two bytes of the MD4 hash
//! are used since this provides sufficient power"). We implement the full
//! digest and let the caller truncate.
//!
//! MD4 is cryptographically broken; here it is a *collision-improbable
//! checksum against random corruption*, exactly as rsync uses it, not a
//! security primitive.

/// Incremental MD4 state.
#[derive(Debug, Clone)]
pub struct Md4 {
    state: [u32; 4],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Md4 {
    fn default() -> Self {
        Self {
            state: [0x6745_2301, 0xEFCD_AB89, 0x98BA_DCFE, 0x1032_5476],
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }
}

impl Md4 {
    /// Fresh state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.process(&block);
                self.buf_len = 0;
            }
        }
        while let Some((block, rest)) = data.split_first_chunk::<64>() {
            self.process(block);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish and produce the 16-byte digest.
    pub fn finish(mut self) -> [u8; 16] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit little-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manual absorption of the length so `self.len` bookkeeping in
        // `update` doesn't matter anymore.
        self.buf[56..64].copy_from_slice(&bit_len.to_le_bytes());
        let block = self.buf;
        self.process(&block);
        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// One-shot digest.
    pub fn digest(data: &[u8]) -> [u8; 16] {
        let mut s = Self::new();
        s.update(data);
        s.finish()
    }

    fn process(&mut self, block: &[u8; 64]) {
        let mut x = [0u32; 16];
        for (word, chunk) in x.iter_mut().zip(block.chunks_exact(4)) {
            *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let [mut a, mut b, mut c, mut d] = self.state;

        #[inline(always)]
        fn f(x: u32, y: u32, z: u32) -> u32 {
            (x & y) | (!x & z)
        }
        #[inline(always)]
        fn g(x: u32, y: u32, z: u32) -> u32 {
            (x & y) | (x & z) | (y & z)
        }
        #[inline(always)]
        fn h(x: u32, y: u32, z: u32) -> u32 {
            x ^ y ^ z
        }

        macro_rules! r1 {
            ($a:ident, $b:ident, $c:ident, $d:ident, $k:expr, $s:expr) => {
                $a = $a.wrapping_add(f($b, $c, $d)).wrapping_add(x[$k]).rotate_left($s);
            };
        }
        macro_rules! r2 {
            ($a:ident, $b:ident, $c:ident, $d:ident, $k:expr, $s:expr) => {
                $a = $a
                    .wrapping_add(g($b, $c, $d))
                    .wrapping_add(x[$k])
                    .wrapping_add(0x5A82_7999)
                    .rotate_left($s);
            };
        }
        macro_rules! r3 {
            ($a:ident, $b:ident, $c:ident, $d:ident, $k:expr, $s:expr) => {
                $a = $a
                    .wrapping_add(h($b, $c, $d))
                    .wrapping_add(x[$k])
                    .wrapping_add(0x6ED9_EBA1)
                    .rotate_left($s);
            };
        }

        // Round 1
        r1!(a, b, c, d, 0, 3);
        r1!(d, a, b, c, 1, 7);
        r1!(c, d, a, b, 2, 11);
        r1!(b, c, d, a, 3, 19);
        r1!(a, b, c, d, 4, 3);
        r1!(d, a, b, c, 5, 7);
        r1!(c, d, a, b, 6, 11);
        r1!(b, c, d, a, 7, 19);
        r1!(a, b, c, d, 8, 3);
        r1!(d, a, b, c, 9, 7);
        r1!(c, d, a, b, 10, 11);
        r1!(b, c, d, a, 11, 19);
        r1!(a, b, c, d, 12, 3);
        r1!(d, a, b, c, 13, 7);
        r1!(c, d, a, b, 14, 11);
        r1!(b, c, d, a, 15, 19);
        // Round 2
        r2!(a, b, c, d, 0, 3);
        r2!(d, a, b, c, 4, 5);
        r2!(c, d, a, b, 8, 9);
        r2!(b, c, d, a, 12, 13);
        r2!(a, b, c, d, 1, 3);
        r2!(d, a, b, c, 5, 5);
        r2!(c, d, a, b, 9, 9);
        r2!(b, c, d, a, 13, 13);
        r2!(a, b, c, d, 2, 3);
        r2!(d, a, b, c, 6, 5);
        r2!(c, d, a, b, 10, 9);
        r2!(b, c, d, a, 14, 13);
        r2!(a, b, c, d, 3, 3);
        r2!(d, a, b, c, 7, 5);
        r2!(c, d, a, b, 11, 9);
        r2!(b, c, d, a, 15, 13);
        // Round 3
        r3!(a, b, c, d, 0, 3);
        r3!(d, a, b, c, 8, 9);
        r3!(c, d, a, b, 4, 11);
        r3!(b, c, d, a, 12, 15);
        r3!(a, b, c, d, 2, 3);
        r3!(d, a, b, c, 10, 9);
        r3!(c, d, a, b, 6, 11);
        r3!(b, c, d, a, 14, 15);
        r3!(a, b, c, d, 1, 3);
        r3!(d, a, b, c, 9, 9);
        r3!(c, d, a, b, 5, 11);
        r3!(b, c, d, a, 13, 15);
        r3!(a, b, c, d, 3, 3);
        r3!(d, a, b, c, 11, 9);
        r3!(c, d, a, b, 7, 11);
        r3!(b, c, d, a, 15, 15);

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: [u8; 16]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc1320_vectors() {
        assert_eq!(hex(Md4::digest(b"")), "31d6cfe0d16ae931b73c59d7e0c089c0");
        assert_eq!(hex(Md4::digest(b"a")), "bde52cb31de33e46245e05fbdbd6fb24");
        assert_eq!(hex(Md4::digest(b"abc")), "a448017aaf21d8525fc10ae87aa6729d");
        assert_eq!(hex(Md4::digest(b"message digest")), "d9130a8164549fe818874806e1c7014b");
        assert_eq!(
            hex(Md4::digest(b"abcdefghijklmnopqrstuvwxyz")),
            "d79e1c308aa5bbcdeea8ed63df412da9"
        );
        assert_eq!(
            hex(Md4::digest(b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789")),
            "043f8582f241db351ce627e153e7f0e4"
        );
        assert_eq!(
            hex(Md4::digest(
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890"
            )),
            "e33b4ddc9c38f2199c3e7b164fcc0536"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let mut s = Md4::new();
        for chunk in data.chunks(97) {
            s.update(chunk);
        }
        assert_eq!(s.finish(), Md4::digest(&data));
    }

    #[test]
    fn padding_boundaries() {
        // Lengths around the 56-byte padding boundary and 64-byte block.
        for len in 54..70usize {
            let data = vec![0xA5u8; len];
            let mut s = Md4::new();
            s.update(&data[..len / 2]);
            s.update(&data[len / 2..]);
            assert_eq!(s.finish(), Md4::digest(&data), "len {len}");
        }
    }
}
