//! Bit-level serialization.
//!
//! The map-construction phase transmits hash values of arbitrary bit width
//! (continuation hashes are 3–4 bits, candidate hashes 8–30 bits), plus
//! per-candidate bitmaps. Packing these tightly is where most of the
//! paper's savings over rsync's byte-aligned wire format come from, so the
//! whole protocol serializes through these two types.

/// Accumulates values of arbitrary bit width into a byte buffer, LSB-first.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits already used in the final byte of `buf` (0 means byte-aligned).
    bit_pos: usize,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of whole bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.bit_pos == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + self.bit_pos
        }
    }

    /// Append the low `bits` bits of `value` (LSB first). `bits` may be 0
    /// (a no-op) and at most 64.
    pub fn write_bits(&mut self, value: u64, bits: u32) {
        debug_assert!(bits <= 64);
        let mut remaining = usize::try_from(bits.min(64)).unwrap_or(64);
        let mut value = if remaining < 64 { value & ((1u64 << remaining) - 1) } else { value };
        while remaining > 0 {
            if self.bit_pos == 0 {
                self.buf.push(0);
            }
            // Non-empty: the push above covers the byte-aligned case.
            let bit_pos = self.bit_pos;
            let Some(last) = self.buf.last_mut() else { return };
            let avail = 8 - bit_pos;
            let take = avail.min(remaining);
            // take ≤ 8, so the masked chunk always fits one byte;
            // try_from keeps that invariant checked instead of silently
            // truncating the way `as u8` would.
            let chunk = u8::try_from(value & ((1u64 << take) - 1)).unwrap_or(u8::MAX);
            *last |= chunk << bit_pos;
            self.bit_pos = (bit_pos + take) % 8;
            value >>= take;
            remaining -= take;
        }
    }

    /// Append a single boolean bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Append a variable-length unsigned integer (7 bits per byte-group,
    /// continuation bit first). Cheap for the small counts the protocol
    /// sends, still fine for 64-bit lengths.
    pub fn write_varint(&mut self, mut value: u64) {
        loop {
            let low = value & 0x7F;
            value >>= 7;
            self.write_bit(value != 0);
            self.write_bits(low, 7);
            if value == 0 {
                break;
            }
        }
    }

    /// Pad with zero bits to the next byte boundary and return the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length in bytes once padded to a byte boundary.
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }
}

/// Reads values written by [`BitWriter`], LSB-first.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    bit_pos: usize,
}

/// Error returned when a [`BitReader`] runs out of input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitReadError;

impl std::fmt::Display for BitReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bit reader exhausted")
    }
}

impl std::error::Error for BitReadError {}

impl<'a> BitReader<'a> {
    /// Wrap a byte slice produced by [`BitWriter::into_bytes`].
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, bit_pos: 0 }
    }

    /// Bits still available (including any zero padding in the last byte).
    pub fn remaining_bits(&self) -> usize {
        self.buf.len() * 8 - self.bit_pos
    }

    /// Read `bits` bits (LSB first). Fails if fewer remain.
    pub fn read_bits(&mut self, bits: u32) -> Result<u64, BitReadError> {
        debug_assert!(bits <= 64);
        let nbits = usize::try_from(bits.min(64)).unwrap_or(64);
        if nbits > self.remaining_bits() {
            return Err(BitReadError);
        }
        let mut out = 0u64;
        let mut got = 0usize;
        while got < nbits {
            let byte = self.buf.get(self.bit_pos / 8).copied().unwrap_or(0);
            let offset = self.bit_pos % 8;
            let avail = 8 - offset;
            let take = avail.min(nbits - got);
            let chunk = (u64::from(byte) >> offset) & ((1u64 << take) - 1);
            out |= chunk << got;
            got += take;
            self.bit_pos += take;
        }
        Ok(out)
    }

    /// Read one boolean bit.
    pub fn read_bit(&mut self) -> Result<bool, BitReadError> {
        Ok(self.read_bits(1)? != 0)
    }

    /// Read a varint written by [`BitWriter::write_varint`].
    pub fn read_varint(&mut self) -> Result<u64, BitReadError> {
        let mut out = 0u64;
        let mut shift = 0u32;
        loop {
            let more = self.read_bit()?;
            let low = self.read_bits(7)?;
            out |= low << shift;
            if !more {
                return Ok(out);
            }
            shift += 7;
            if shift >= 64 {
                return Err(BitReadError);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xDEAD, 16);
        w.write_bit(true);
        w.write_bits(0x1234_5678_9ABC_DEF0, 64);
        w.write_bits(0, 0); // no-op
        w.write_bits(0x7F, 7);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(16).unwrap(), 0xDEAD);
        assert!(r.read_bit().unwrap());
        assert_eq!(r.read_bits(64).unwrap(), 0x1234_5678_9ABC_DEF0);
        assert_eq!(r.read_bits(7).unwrap(), 0x7F);
    }

    #[test]
    fn varint_roundtrip() {
        let values = [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX];
        let mut w = BitWriter::new();
        for &v in &values {
            w.write_varint(v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.read_varint().unwrap(), v);
        }
    }

    #[test]
    fn bit_len_accounting() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(1, 1);
        assert_eq!(w.bit_len(), 1);
        w.write_bits(0, 7);
        assert_eq!(w.bit_len(), 8);
        w.write_bits(3, 2);
        assert_eq!(w.bit_len(), 10);
        assert_eq!(w.byte_len(), 2);
    }

    #[test]
    fn reader_exhaustion() {
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert_eq!(r.read_bits(1), Err(BitReadError));
    }

    #[test]
    fn truncates_value_to_width() {
        let mut w = BitWriter::new();
        w.write_bits(0xFF, 4); // only low 4 bits kept
        w.write_bits(0x0, 4);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0x0F]);
    }
}
