//! Hash functions for file synchronization.
//!
//! This crate provides every hash primitive used by the msync protocol and
//! by the rsync baseline, implemented from scratch:
//!
//! * [`rolling`] — the rolling-checksum abstraction and the classic rsync
//!   rolling checksum (a two-component Adler-style sum that can slide its
//!   window by one byte in constant time).
//! * [`adler`] — the textbook Adler-32 checksum, for reference and tests.
//! * [`decomposable`] — the paper's key primitive: a keyed two-component
//!   checksum that is simultaneously *rolling*, *composable* (parent hash
//!   from child hashes), *decomposable* (sibling hash from parent + other
//!   sibling), and *bit-prefix decomposable* (all of the above hold on any
//!   low-bit truncation). Section 5.5 of the paper.
//! * [`rabin`] — a Rabin–Karp polynomial rolling hash, used by the
//!   content-defined-chunking related work and as an alternative matcher.
//! * [`md4`] / [`md5`] — the strong digests used by rsync (MD4) and by the
//!   paper's verification hashes and file fingerprints (MD5), implemented
//!   from RFC 1320 / RFC 1321 and validated against the RFC test vectors.
//! * [`fingerprint`] — 16-byte whole-file fingerprints used to skip
//!   unchanged files and to detect residual synchronization failure.
//! * [`bitio`] — bit-level packing used to transmit hashes of arbitrary
//!   bit width (the protocol routinely sends 3–24 bit hashes).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adler;
pub mod bitio;
pub mod decomposable;
pub mod fingerprint;
pub mod md4;
pub mod md5;
pub mod rabin;
pub mod rolling;

pub use adler::Adler32;
pub use bitio::{BitReader, BitWriter};
pub use decomposable::{DecomposableAdler, DecomposableDigest};
pub use fingerprint::{file_fingerprint, Fingerprint};
pub use md4::Md4;
pub use md5::Md5;
pub use rabin::RabinHash;
pub use rolling::{RollingHash, RsyncRolling};

/// Little-endian `u64` from the first 8 bytes of a digest, zero-padded
/// if the slice is shorter. Collapsing strong digests to 64-bit test
/// values this way is used throughout the protocol (verification hashes,
/// reconciliation bucket indices), so it lives here, panic-free.
#[inline]
#[must_use]
pub fn u64_prefix_le(digest: &[u8]) -> u64 {
    let mut bytes = [0u8; 8];
    for (dst, src) in bytes.iter_mut().zip(digest) {
        *dst = *src;
    }
    u64::from_le_bytes(bytes)
}

/// Truncate a 64-bit hash value to its low `bits` bits (`1..=64`).
#[inline]
pub fn truncate_bits(value: u64, bits: u32) -> u64 {
    debug_assert!((1..=64).contains(&bits));
    if bits >= 64 {
        value
    } else {
        value & ((1u64 << bits) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_keeps_low_bits() {
        assert_eq!(truncate_bits(0xFFFF_FFFF_FFFF_FFFF, 4), 0xF);
        assert_eq!(truncate_bits(0xABCD, 8), 0xCD);
        assert_eq!(truncate_bits(0xABCD, 64), 0xABCD);
        assert_eq!(truncate_bits(u64::MAX, 63), u64::MAX >> 1);
    }

    #[test]
    fn u64_prefix_reads_first_eight_bytes() {
        let d = [1u8, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF];
        assert_eq!(u64_prefix_le(&d), 1);
        assert_eq!(u64_prefix_le(&[0xABu8]), 0xAB);
        assert_eq!(u64_prefix_le(&[]), 0);
    }

    #[test]
    fn truncate_one_bit() {
        assert_eq!(truncate_bits(0b1011, 1), 1);
        assert_eq!(truncate_bits(0b1010, 1), 0);
    }
}
