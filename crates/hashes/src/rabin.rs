//! Rabin–Karp polynomial rolling hash.
//!
//! The related work the paper builds on (Karp–Rabin fingerprinting; LBFS,
//! Pastiche, value-based web caching) uses polynomial fingerprints, both
//! for rolling comparison and for content-defined chunk boundaries. We
//! provide it as an alternative rolling hash and for the ablation bench
//! comparing rolling-hash families.

use crate::rolling::RollingHash;

/// Modulus: the Mersenne prime 2^61 − 1, giving cheap reduction and a
/// near-uniform 61-bit output.
pub const MOD: u64 = (1 << 61) - 1;

/// Multiplication base (any value in `[2, MOD)` with large multiplicative
/// order works; this one is fixed as part of the protocol).
pub const BASE: u64 = 0x1_0000_01B3; // FNV-ish constant, < 2^33

#[inline]
fn mod_mul(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) % MOD as u128) as u64
}

#[inline]
fn mod_add(a: u64, b: u64) -> u64 {
    let s = a + b;
    if s >= MOD {
        s - MOD
    } else {
        s
    }
}

#[inline]
fn mod_sub(a: u64, b: u64) -> u64 {
    if a >= b {
        a - b
    } else {
        a + MOD - b
    }
}

#[inline]
fn mod_pow(mut base: u64, mut exp: u64) -> u64 {
    let mut acc = 1u64;
    base %= MOD;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mod_mul(acc, base);
        }
        base = mod_mul(base, base);
        exp >>= 1;
    }
    acc
}

/// Rolling Rabin–Karp hash over a fixed-length window.
///
/// `H(s) = Σᵢ sᵢ · BASE^(L−1−i) mod (2^61 − 1)`.
#[derive(Debug, Clone, Default)]
pub struct RabinHash {
    value: u64,
    /// `BASE^(L−1)`, used to remove the leaving byte.
    top_power: u64,
    len: usize,
}

impl RabinHash {
    /// Create an empty state; call [`RollingHash::reset`] before use.
    pub fn new() -> Self {
        Self::default()
    }

    /// One-shot fingerprint of a block.
    pub fn fingerprint(data: &[u8]) -> u64 {
        let mut h = Self::new();
        h.reset(data);
        h.value()
    }
}

impl RollingHash for RabinHash {
    fn reset(&mut self, data: &[u8]) {
        let mut v = 0u64;
        for &byte in data {
            v = mod_add(mod_mul(v, BASE), byte as u64 + 1);
        }
        self.value = v;
        self.len = data.len();
        self.top_power = if data.is_empty() { 0 } else { mod_pow(BASE, data.len() as u64 - 1) };
    }

    fn roll(&mut self, out: u8, in_: u8) {
        let without_out = mod_sub(self.value, mod_mul(out as u64 + 1, self.top_power));
        self.value = mod_add(mod_mul(without_out, BASE), in_ as u64 + 1);
    }

    fn value(&self) -> u64 {
        self.value
    }

    fn window_len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roll_matches_recompute() {
        let data: Vec<u8> = (0..500usize).map(|i| ((i * 97 + 13) % 256) as u8).collect();
        let window = 48;
        let mut h = RabinHash::new();
        h.reset(&data[..window]);
        for start in 1..(data.len() - window) {
            h.roll(data[start - 1], data[start + window - 1]);
            assert_eq!(
                h.value(),
                RabinHash::fingerprint(&data[start..start + window]),
                "offset {start}"
            );
        }
    }

    #[test]
    fn distinguishes_zero_prefixes() {
        // The +1 byte offset ensures leading zero bytes change the hash.
        assert_ne!(RabinHash::fingerprint(b"\0abc"), RabinHash::fingerprint(b"abc"));
    }

    #[test]
    fn mod_pow_basics() {
        assert_eq!(mod_pow(2, 0), 1);
        assert_eq!(mod_pow(2, 10), 1024);
        assert_eq!(mod_pow(MOD - 1, 2), 1); // (-1)^2 = 1
    }

    #[test]
    fn value_below_modulus() {
        let data = vec![0xFFu8; 1000];
        assert!(RabinHash::fingerprint(&data) < MOD);
    }
}
