//! The textbook Adler-32 checksum (RFC 1950 §8.2).
//!
//! Included as the reference point the paper's modified checksum departs
//! from, and used by the compression substrate's integrity checks.

const MOD_ADLER: u32 = 65_521;

/// Incremental Adler-32 state.
#[derive(Debug, Clone)]
pub struct Adler32 {
    a: u32,
    b: u32,
}

impl Default for Adler32 {
    fn default() -> Self {
        Self { a: 1, b: 0 }
    }
}

impl Adler32 {
    /// Fresh state (checksum of the empty string is 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb bytes.
    pub fn update(&mut self, data: &[u8]) {
        // Process in chunks small enough that the u32 sums cannot overflow
        // before a modulo reduction (5552 is the standard bound).
        for chunk in data.chunks(5552) {
            for &byte in chunk {
                self.a += byte as u32;
                self.b += self.a;
            }
            self.a %= MOD_ADLER;
            self.b %= MOD_ADLER;
        }
    }

    /// Final checksum value.
    pub fn finish(&self) -> u32 {
        (self.b << 16) | self.a
    }

    /// One-shot checksum.
    pub fn checksum(data: &[u8]) -> u32 {
        let mut s = Self::new();
        s.update(data);
        s.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard Adler-32 test vectors.
        assert_eq!(Adler32::checksum(b""), 1);
        assert_eq!(Adler32::checksum(b"a"), 0x0062_0062);
        assert_eq!(Adler32::checksum(b"abc"), 0x024D_0127);
        assert_eq!(Adler32::checksum(b"Wikipedia"), 0x11E6_0398);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 256) as u8).collect();
        let mut s = Adler32::new();
        for chunk in data.chunks(7) {
            s.update(chunk);
        }
        assert_eq!(s.finish(), Adler32::checksum(&data));
    }

    #[test]
    fn long_input_no_overflow() {
        let data = vec![0xFFu8; 1 << 20];
        // Just ensure it completes and is stable.
        assert_eq!(Adler32::checksum(&data), Adler32::checksum(&data));
    }
}
