//! The decomposable rolling checksum (paper §5.5).
//!
//! The protocol sends hashes for blocks at every level of a binary tree of
//! block sizes. Since a parent's hash has already been sent, a
//! *decomposable* hash lets the client compute the right sibling's hash
//! from the parent's and the left sibling's — halving the hash bits sent
//! per round. The paper notes that "designing appropriate hash functions
//! to implement this is nontrivial" and builds a modified Adler checksum;
//! this module is our version of that construction.
//!
//! ## Construction
//!
//! Fix a keyed nonlinear byte table `g: u8 → u32` (a pseudorandom table —
//! this defeats the permutation weakness of the plain Adler sums, which the
//! paper calls out: "strings that can be obtained from each other through
//! permutation should not be mapped to the same hash too often"). Over a
//! string `s` of length `L` define, in `ℤ/2³²`:
//!
//! ```text
//! A(s) = Σᵢ g(sᵢ)            B(s) = Σᵢ (L−i)·g(sᵢ)
//! ```
//!
//! These satisfy every property the paper asks of the hash (§5.5):
//!
//! * **rolling** — sliding the window right by one byte:
//!   `A' = A − g(out) + g(in)`, `B' = B − L·g(out) + A'`.
//! * **composable** — for concatenation `l·r` with `|r| = n`:
//!   `A(lr) = A(l)+A(r)`, `B(lr) = B(l) + n·A(l) + B(r)`.
//! * **decomposable** — solve the composition identities for either child.
//! * **bit-prefix decomposable** — all identities are `+`, `−`, and
//!   multiplication by known lengths, so they hold modulo `2ᵏ` for every
//!   `k`: the low `k` bits of a child follow from the low `k` bits of the
//!   parent and sibling. The transmitted hash value *interleaves* the bits
//!   of `A` and `B` so that any `b`-bit prefix carries `⌈b/2⌉` bits of `A`
//!   and `⌊b/2⌋` bits of `B`, and the `A` surplus is exactly what the `B`
//!   decomposition needs.

use crate::rolling::RollingHash;

/// Keyed byte table: splitmix64 stream over a fixed seed, computed at
/// compile time. Both endpoints must share the table (it is part of the
/// protocol definition, like rsync's choice of checksum).
const fn build_table(seed: u64) -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut state = seed;
    let mut i = 0;
    while i < 256 {
        // splitmix64 step
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        table[i] = (z >> 17) as u32;
        i += 1;
    }
    table
}

/// The shared byte table.
pub(crate) const G: [u32; 256] = build_table(0x6D73_796E_6331_3939); // "msync1 99"

/// Digest of a block under the decomposable checksum: both components plus
/// the block length (lengths are known to both sides from the block tree,
/// but carrying them makes compose/decompose self-contained).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecomposableDigest {
    /// Unweighted component `A`.
    pub a: u32,
    /// Position-weighted component `B`.
    pub b: u32,
    /// Block length in bytes.
    pub len: u64,
}

impl DecomposableDigest {
    /// Digest of the empty string.
    pub const EMPTY: Self = Self { a: 0, b: 0, len: 0 };

    /// Compute the digest of a block.
    pub fn of(data: &[u8]) -> Self {
        let mut a = 0u32;
        let mut b = 0u32;
        let len = data.len() as u64;
        for (i, &byte) in data.iter().enumerate() {
            let g = G[byte as usize];
            a = a.wrapping_add(g);
            b = b.wrapping_add((len as u32).wrapping_sub(i as u32).wrapping_mul(g));
        }
        Self { a, b, len }
    }

    /// Parent digest from the two children: `self · right`.
    pub fn compose(&self, right: &Self) -> Self {
        Self {
            a: self.a.wrapping_add(right.a),
            b: self.b.wrapping_add(right.b).wrapping_add((right.len as u32).wrapping_mul(self.a)),
            len: self.len + right.len,
        }
    }

    /// Right child from parent (`self`) and left child.
    ///
    /// Returns `None` if the left child is longer than the parent.
    pub fn decompose_right(&self, left: &Self) -> Option<Self> {
        let right_len = self.len.checked_sub(left.len)?;
        let a = self.a.wrapping_sub(left.a);
        let b = self.b.wrapping_sub(left.b).wrapping_sub((right_len as u32).wrapping_mul(left.a));
        Some(Self { a, b, len: right_len })
    }

    /// Left child from parent (`self`) and right child.
    pub fn decompose_left(&self, right: &Self) -> Option<Self> {
        let left_len = self.len.checked_sub(right.len)?;
        let a = self.a.wrapping_sub(right.a);
        let b = self.b.wrapping_sub(right.b).wrapping_sub((right.len as u32).wrapping_mul(a));
        Some(Self { a, b, len: left_len })
    }

    /// The transmitted hash value: bits of `A` and `B` interleaved
    /// (`A` on even positions), so any low-bit prefix keeps usable low
    /// bits of both components.
    pub fn value(&self) -> u64 {
        interleave(self.a, self.b)
    }

    /// The low `bits`-bit prefix of [`Self::value`].
    pub fn prefix(&self, bits: u32) -> u64 {
        crate::truncate_bits(self.value(), bits)
    }
}

/// Morton-interleave: bit `i` of `a` goes to bit `2i`, bit `i` of `b` to
/// bit `2i+1`.
#[inline]
pub fn interleave(a: u32, b: u32) -> u64 {
    spread(a) | (spread(b) << 1)
}

/// Inverse of [`interleave`].
#[inline]
pub fn deinterleave(v: u64) -> (u32, u32) {
    (compact(v), compact(v >> 1))
}

#[inline]
fn spread(x: u32) -> u64 {
    let mut x = x as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

#[inline]
fn compact(x: u64) -> u32 {
    let mut x = x & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

/// Derive the `bits`-bit prefix of the *right* sibling's hash value from
/// the `bits`-bit prefixes of the parent's and left sibling's values.
///
/// This is the wire-level operation the protocol performs when the server
/// suppresses every other sibling hash (paper §5.6: "the decomposability of
/// the hash function is implemented at a lower level by suppressing the
/// transmission of hash bits that can be computed from sibling and ancestor
/// hashes"). `left_len` and `right_len` are known to both sides from the
/// block tree.
pub fn prefix_decompose_right(
    parent_prefix: u64,
    left_prefix: u64,
    bits: u32,
    right_len: u64,
) -> u64 {
    let (pa, pb) = deinterleave(parent_prefix);
    let (la, lb) = deinterleave(left_prefix);
    let ra = pa.wrapping_sub(la);
    let rb = pb.wrapping_sub(lb).wrapping_sub((right_len as u32).wrapping_mul(la));
    crate::truncate_bits(interleave(ra, rb), bits)
}

/// Derive the `bits`-bit prefix of the *left* sibling's hash value from the
/// parent's and right sibling's prefixes. See [`prefix_decompose_right`].
pub fn prefix_decompose_left(
    parent_prefix: u64,
    right_prefix: u64,
    bits: u32,
    right_len: u64,
) -> u64 {
    let (pa, pb) = deinterleave(parent_prefix);
    let (ra, rb) = deinterleave(right_prefix);
    let la = pa.wrapping_sub(ra);
    let lb = pb.wrapping_sub(rb).wrapping_sub((right_len as u32).wrapping_mul(la));
    crate::truncate_bits(interleave(la, lb), bits)
}

/// Rolling-window form of the decomposable checksum, for scanning a file
/// at every offset (global-hash matching).
#[derive(Debug, Clone, Default)]
pub struct DecomposableAdler {
    a: u32,
    b: u32,
    len: usize,
}

impl DecomposableAdler {
    /// Create an empty state; call [`RollingHash::reset`] before use.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RollingHash for DecomposableAdler {
    fn reset(&mut self, data: &[u8]) {
        let d = DecomposableDigest::of(data);
        self.a = d.a;
        self.b = d.b;
        self.len = data.len();
    }

    fn roll(&mut self, out: u8, in_: u8) {
        let go = G[out as usize];
        let gi = G[in_ as usize];
        self.a = self.a.wrapping_sub(go).wrapping_add(gi);
        self.b = self.b.wrapping_sub((self.len as u32).wrapping_mul(go)).wrapping_add(self.a);
    }

    fn value(&self) -> u64 {
        interleave(self.a, self.b)
    }

    fn window_len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rolling::RollingHash;

    fn data(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 131 + 17) % 256) as u8).collect()
    }

    #[test]
    fn roll_matches_recompute() {
        let d = data(300);
        let window = 32;
        let mut h = DecomposableAdler::new();
        h.reset(&d[..window]);
        for start in 1..(d.len() - window) {
            h.roll(d[start - 1], d[start + window - 1]);
            let fresh = DecomposableDigest::of(&d[start..start + window]);
            assert_eq!(h.value(), fresh.value(), "offset {start}");
        }
    }

    #[test]
    fn compose_matches_direct() {
        let d = data(257);
        for split in [0usize, 1, 64, 128, 200, 257] {
            let l = DecomposableDigest::of(&d[..split]);
            let r = DecomposableDigest::of(&d[split..]);
            assert_eq!(l.compose(&r), DecomposableDigest::of(&d), "split {split}");
        }
    }

    #[test]
    fn decompose_inverts_compose() {
        let d = data(513);
        for split in [1usize, 99, 256, 400] {
            let l = DecomposableDigest::of(&d[..split]);
            let r = DecomposableDigest::of(&d[split..]);
            let p = l.compose(&r);
            assert_eq!(p.decompose_right(&l), Some(r));
            assert_eq!(p.decompose_left(&r), Some(l));
        }
    }

    #[test]
    fn decompose_rejects_oversized_child() {
        let p = DecomposableDigest::of(b"abc");
        let big = DecomposableDigest::of(b"abcdef");
        assert_eq!(p.decompose_right(&big), None);
        assert_eq!(p.decompose_left(&big), None);
    }

    #[test]
    fn interleave_roundtrip() {
        for (a, b) in [(0u32, 0u32), (1, 0), (0, 1), (u32::MAX, 0), (0xDEAD_BEEF, 0x1234_5678)] {
            assert_eq!(deinterleave(interleave(a, b)), (a, b));
        }
    }

    #[test]
    fn prefix_decompose_matches_full_decompose() {
        let d = data(1024);
        let split = 512;
        let l = DecomposableDigest::of(&d[..split]);
        let r = DecomposableDigest::of(&d[split..]);
        let p = l.compose(&r);
        for bits in [2u32, 3, 8, 13, 16, 24, 31, 48, 64] {
            let derived = prefix_decompose_right(p.prefix(bits), l.prefix(bits), bits, r.len);
            assert_eq!(derived, r.prefix(bits), "bits {bits}");
            let derived_l = prefix_decompose_left(p.prefix(bits), r.prefix(bits), bits, r.len);
            assert_eq!(derived_l, l.prefix(bits), "bits {bits}");
        }
    }

    #[test]
    fn permutation_usually_changes_hash() {
        // The keyed table plus position weighting must separate permuted
        // strings: check on a batch of adjacent-swap permutations.
        let base = data(64);
        let h0 = DecomposableDigest::of(&base).value();
        let mut collisions = 0;
        for i in 0..63 {
            if base[i] == base[i + 1] {
                continue;
            }
            let mut p = base.clone();
            p.swap(i, i + 1);
            if DecomposableDigest::of(&p).value() == h0 {
                collisions += 1;
            }
        }
        assert_eq!(collisions, 0);
    }

    #[test]
    fn empty_digest() {
        assert_eq!(DecomposableDigest::of(b""), DecomposableDigest::EMPTY);
        let d = DecomposableDigest::of(b"xyz");
        assert_eq!(DecomposableDigest::EMPTY.compose(&d), d);
        assert_eq!(d.compose(&DecomposableDigest::EMPTY), d);
    }
}
