//! Whole-file fingerprints.
//!
//! The session begins with "the exchange of a very strong 16-byte hash
//! value for each file" (paper §6.1), which (a) detects unchanged files so
//! they can be skipped entirely, and (b) detects the unlikely residual
//! failure of the weak-hash protocol, in which case the file is re-sent.

use crate::md5::Md5;

/// A 16-byte strong file fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub [u8; 16]);

impl Fingerprint {
    /// Number of bytes on the wire.
    pub const WIRE_LEN: usize = 16;

    /// Hex rendering for logs and reports.
    pub fn to_hex(self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

/// Fingerprint a file's contents. The length is mixed in so that files
/// differing only by trailing truncation to a block boundary cannot alias
/// through any block-structure quirk upstream.
pub fn file_fingerprint(data: &[u8]) -> Fingerprint {
    let mut h = Md5::new();
    h.update(&(data.len() as u64).to_le_bytes());
    h.update(data);
    Fingerprint(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_content_equal_fingerprint() {
        assert_eq!(file_fingerprint(b"hello"), file_fingerprint(b"hello"));
    }

    #[test]
    fn different_content_different_fingerprint() {
        assert_ne!(file_fingerprint(b"hello"), file_fingerprint(b"hellp"));
        assert_ne!(file_fingerprint(b""), file_fingerprint(b"\0"));
    }

    #[test]
    fn hex_format() {
        let f = file_fingerprint(b"x");
        let hex = f.to_hex();
        assert_eq!(hex.len(), 32);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
