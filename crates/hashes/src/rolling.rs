//! Rolling checksums.
//!
//! A rolling checksum over a window of fixed length `L` can be updated in
//! constant time when the window slides right by one byte. rsync uses this
//! to compare a client block hash against *every* offset of the server
//! file; msync uses it the same way for global hashes.

/// A checksum over a fixed-length window that supports O(1) sliding.
pub trait RollingHash {
    /// Initialize the window over `data` (the window length is `data.len()`).
    fn reset(&mut self, data: &[u8]);

    /// Slide the window one byte to the right: `out` leaves on the left,
    /// `in_` enters on the right.
    fn roll(&mut self, out: u8, in_: u8);

    /// Current hash value (full width; truncate for transmission).
    fn value(&self) -> u64;

    /// Window length this hash was initialized with.
    fn window_len(&self) -> usize;
}

/// The classic rsync rolling checksum (Tridgell & MacKerras).
///
/// Two 16-bit sums: `a = Σ sᵢ` and `b = Σ (L−i)·sᵢ`, combined as
/// `a | b << 16`. Fast but weak — rsync pairs it with a strong MD4 hash;
/// msync instead pairs weak hashes with an optimized verification phase.
#[derive(Debug, Clone, Default)]
pub struct RsyncRolling {
    a: u32,
    b: u32,
    len: usize,
}

impl RsyncRolling {
    /// Create an empty checksum; call [`RollingHash::reset`] before use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience: checksum of a whole block.
    pub fn checksum(data: &[u8]) -> u32 {
        let mut h = Self::new();
        h.reset(data);
        h.value() as u32
    }
}

impl RollingHash for RsyncRolling {
    fn reset(&mut self, data: &[u8]) {
        let mut a = 0u32;
        let mut b = 0u32;
        let len = data.len() as u32;
        for (i, &byte) in data.iter().enumerate() {
            a = a.wrapping_add(byte as u32);
            b = b.wrapping_add((len - i as u32).wrapping_mul(byte as u32));
        }
        self.a = a & 0xFFFF;
        self.b = b & 0xFFFF;
        self.len = data.len();
    }

    fn roll(&mut self, out: u8, in_: u8) {
        let l = self.len as u32;
        self.a = self.a.wrapping_sub(out as u32).wrapping_add(in_ as u32) & 0xFFFF;
        self.b = self.b.wrapping_sub(l.wrapping_mul(out as u32)).wrapping_add(self.a) & 0xFFFF;
        // NOTE: `self.a` above is already the *new* a, matching rsync's
        // recurrence b' = b − L·out + a'.
    }

    fn value(&self) -> u64 {
        (self.a | (self.b << 16)) as u64
    }

    fn window_len(&self) -> usize {
        self.len
    }
}

/// Scan `haystack` with a rolling hash, calling `f(offset, value)` for the
/// window starting at every offset in `0..=haystack.len()-window`.
///
/// Returns immediately if `haystack` is shorter than `window` or the window
/// is empty.
pub fn scan_rolling<H: RollingHash>(
    hash: &mut H,
    haystack: &[u8],
    window: usize,
    mut f: impl FnMut(usize, u64),
) {
    if window == 0 || haystack.len() < window {
        return;
    }
    hash.reset(&haystack[..window]);
    f(0, hash.value());
    for i in window..haystack.len() {
        hash.roll(haystack[i - window], haystack[i]);
        f(i - window + 1, hash.value());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roll_matches_recompute() {
        let data: Vec<u8> = (0..200u32).map(|i| (i * 37 % 251) as u8).collect();
        let window = 16;
        let mut rolled = RsyncRolling::new();
        rolled.reset(&data[..window]);
        for start in 1..(data.len() - window) {
            rolled.roll(data[start - 1], data[start + window - 1]);
            let mut fresh = RsyncRolling::new();
            fresh.reset(&data[start..start + window]);
            assert_eq!(rolled.value(), fresh.value(), "offset {start}");
        }
    }

    #[test]
    fn scan_visits_every_offset() {
        let data = b"abcdefghij";
        let mut h = RsyncRolling::new();
        let mut offsets = Vec::new();
        scan_rolling(&mut h, data, 3, |off, _| offsets.push(off));
        assert_eq!(offsets, (0..=7).collect::<Vec<_>>());
    }

    #[test]
    fn scan_short_haystack_is_empty() {
        let mut h = RsyncRolling::new();
        let mut called = false;
        scan_rolling(&mut h, b"ab", 3, |_, _| called = true);
        assert!(!called);
        scan_rolling(&mut h, b"ab", 0, |_, _| called = true);
        assert!(!called);
    }

    #[test]
    fn checksum_differs_for_permutation_sometimes() {
        // The classic checksum's `b` component is position-weighted, so a
        // swap of two distinct bytes changes it.
        let x = RsyncRolling::checksum(b"abcd");
        let y = RsyncRolling::checksum(b"abdc");
        assert_ne!(x, y);
    }

    #[test]
    fn empty_block_is_zero() {
        assert_eq!(RsyncRolling::checksum(b""), 0);
    }
}
