#!/usr/bin/env bash
# Tier-1 gate for the msync workspace. Fully offline: no registry, no
# network. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> xtask lint gate"
cargo run --release -q -p xtask -- lint

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> network loopback gate (live daemon on 127.0.0.1, release)"
cargo test --release -q --test net_loopback

echo "==> fault-injection soak (seeded, release)"
MSYNC_SOAK_SEEDS="${MSYNC_SOAK_SEEDS:-40}" \
    cargo test --release -q --test fault_injection

echo "ci.sh: all gates passed"
