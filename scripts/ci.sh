#!/usr/bin/env bash
# Tier-1 gate for the msync workspace. Fully offline: no registry, no
# network. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> xtask lint gate"
cargo run --release -q -p xtask -- lint

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q --workspace

echo "ci.sh: all gates passed"
