#!/usr/bin/env bash
# Tier-1 gate for the msync workspace. Fully offline: no registry, no
# network. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> xtask lint gate"
cargo run --release -q -p xtask -- lint

echo "==> lint report artifact (LINT_REPORT.json, schema-validated)"
cargo run --release -q -p xtask -- lint --format json > LINT_REPORT.json
cargo run --release -q -p xtask -- check-lint-report LINT_REPORT.json

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> network loopback gate (live daemon, 32-client soak with admin scrapes, admission control)"
cargo test --release -q --test net_loopback
test -s ARTIFACT_sessions_scrape.txt || {
    echo "soak did not archive its mid-soak sessions scrape"; exit 1; }

echo "==> live introspection gate (sessions/health verbs, slow-session watchdog)"
cargo test --release -q --test introspection

echo "==> sans-IO engine determinism gate (ManualClock replay)"
cargo test --release -q --test engine_machine

echo "==> fault-injection soak (seeded, release)"
MSYNC_SOAK_SEEDS="${MSYNC_SOAK_SEEDS:-40}" \
    cargo test --release -q --test fault_injection

echo "==> golden trace journal (byte-identical under ManualClock)"
cargo test --release -q --test trace_journal

echo "==> journal schema validation (xtask check-journal, jq-free)"
journal="$(mktemp /tmp/msync-ci-journal.XXXXXX)"
trap 'rm -f "$journal"' EXIT
tree="$(mktemp -d /tmp/msync-ci-tree.XXXXXX)"
trap 'rm -f "$journal"; rm -rf "$tree"' EXIT
mkdir -p "$tree/old" "$tree/new"
printf 'hello msync observability\n%.0s' {1..200} > "$tree/old/a.txt"
{ cat "$tree/old/a.txt"; echo "changed tail"; } > "$tree/new/a.txt"
cp "$tree/old/a.txt" "$tree/new/b.txt"
./target/release/msync sync "$tree/old" "$tree/new" --trace-out "$journal" > /dev/null
cargo run --release -q -p xtask -- check-journal "$journal"

echo "==> chrome trace export (msync trace-export, TRACE_chrome.json)"
./target/release/msync trace-export "$journal" --out TRACE_chrome.json > /dev/null
test -s TRACE_chrome.json

echo "==> live daemon scrape (msync stats -> xtask check-metrics, SCRAPE_metrics.txt, frame-pool family required)"
serve_log="$(mktemp /tmp/msync-ci-serve.XXXXXX)"
./target/release/msync serve "$tree/new" --listen 127.0.0.1:0 --slow-session-ms 30000 \
    > "$serve_log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -f "$journal" "$serve_log"; rm -rf "$tree"' EXIT
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on \(.*\) (ctrl-c to stop)$/\1/p' "$serve_log")"
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "serve never reported its address"; cat "$serve_log"; exit 1; }
./target/release/msync sync "$tree/old" --remote "$addr" > /dev/null
./target/release/msync stats --remote "$addr" > SCRAPE_metrics.txt
cargo run --release -q -p xtask -- check-metrics SCRAPE_metrics.txt --require msync_frame_pool_
kill "$serve_pid" 2>/dev/null || true

echo "==> tracing overhead gate (< 5%, BENCH_trace_overhead.json)"
MSYNC_BENCH=1 cargo test --release -q --test trace_overhead

echo "==> daemon 1k-session soak (mux >= thread-per-session, bytes-copied + peak-RSS ceilings, BENCH_daemon_concurrency.json)"
MSYNC_BENCH=1 cargo test --release -q --test daemon_bench
test -s BENCH_daemon_concurrency.json || {
    echo "daemon soak did not archive its measurement"; exit 1; }

echo "==> crash-resume byte gate (resume < restart, warm cache = roster only, BENCH_resume.json)"
MSYNC_BENCH=1 cargo test --release -q --test fault_injection resume_bench_gate

echo "==> server hash-cache gate (N warm sessions re-hash zero bytes, BENCH_hash_cache.json)"
MSYNC_BENCH=1 cargo test --release -q --test hash_cache_bench

echo "ci.sh: all gates passed"
